//! The element abstraction tying scalar types to the compact layout.
//!
//! An [`Element`] is one of the four BLAS element types (`f32`, `f64`,
//! [`c32`](crate::c32), [`c64`](crate::c64)). It knows its real component
//! type, its interleaving factor `P`, and enough scalar arithmetic for the
//! reference (oracle) implementations. High-performance kernels do not use
//! this trait's arithmetic — they go through [`crate::SimdReal`] /
//! [`crate::CVec`] — but drivers and packing code are generic over it.

use crate::complex::{c32, c64, Complex};
use crate::real::Real;
use crate::vector::SIMD_BYTES;
use crate::width::VecWidth;
use core::fmt::Debug;

/// Runtime tag for the four supported element types.
///
/// Used as a registry key by the install-time stage and for reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// Single-precision real (`sgemm`/`strsm`).
    F32,
    /// Double-precision real (`dgemm`/`dtrsm`).
    F64,
    /// Single-precision complex (`cgemm`/`ctrsm`).
    C32,
    /// Double-precision complex (`zgemm`/`ztrsm`).
    C64,
}

impl DType {
    /// All four dtypes in BLAS order (s, d, c, z).
    pub const ALL: [DType; 4] = [DType::F32, DType::F64, DType::C32, DType::C64];

    /// True for complex dtypes.
    pub fn is_complex(self) -> bool {
        matches!(self, DType::C32 | DType::C64)
    }

    /// Interleaving factor `P` at the paper's 128-bit baseline width: how
    /// many matrices share one SIMD vector. Width-aware code should use
    /// [`DType::p_at`] with the plan's [`VecWidth`] instead.
    pub fn p(self) -> usize {
        match self {
            DType::F32 | DType::C32 => SIMD_BYTES / 4,
            DType::F64 | DType::C64 => SIMD_BYTES / 8,
        }
    }

    /// Interleaving factor `P` at a given vector width (e.g. 8×f32 at
    /// `W256`, 16×f32 at `W512`; the scalar backend mirrors 128-bit).
    pub fn p_at(self, width: VecWidth) -> usize {
        width.lanes_for(self.scalar_bytes())
    }

    /// Bytes of one real scalar component.
    pub fn scalar_bytes(self) -> usize {
        match self {
            DType::F32 | DType::C32 => 4,
            DType::F64 | DType::C64 => 8,
        }
    }

    /// Bytes of one element (twice the scalar for complex).
    pub fn elem_bytes(self) -> usize {
        self.scalar_bytes() * if self.is_complex() { 2 } else { 1 }
    }

    /// Floating-point operations per multiply-accumulate (2 real, 8 complex),
    /// the convention used for the paper's GFLOPS numbers.
    pub fn flops_per_mac(self) -> usize {
        if self.is_complex() {
            8
        } else {
            2
        }
    }

    /// BLAS routine prefix letter (`s`, `d`, `c`, `z`).
    pub fn prefix(self) -> char {
        match self {
            DType::F32 => 's',
            DType::F64 => 'd',
            DType::C32 => 'c',
            DType::C64 => 'z',
        }
    }
}

impl core::fmt::Display for DType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::C32 => "c32",
            DType::C64 => "c64",
        };
        f.write_str(s)
    }
}

/// A BLAS element type: real or complex, single or double precision.
pub trait Element: Copy + Clone + Debug + Default + PartialEq + Send + Sync + 'static {
    /// The real component scalar.
    type Real: Real;
    /// Runtime tag for this type.
    const DTYPE: DType;
    /// True for complex types.
    const IS_COMPLEX: bool;
    /// Real scalars per element (1 or 2).
    const SCALARS: usize;
    /// Interleaving factor at the paper's 128-bit baseline width: matrices
    /// per SIMD vector. Width-aware code should call [`Element::p_at`] with
    /// the plan's width; `P` remains the baseline the paper's shape tables
    /// are expressed in.
    const P: usize;

    /// Interleaving factor at a given vector width.
    fn p_at(width: VecWidth) -> usize {
        width.lanes_for(core::mem::size_of::<Self::Real>())
    }

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition (reference arithmetic).
    fn add(self, rhs: Self) -> Self;
    /// Subtraction (reference arithmetic).
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication (reference arithmetic).
    fn mul(self, rhs: Self) -> Self;
    /// Negation.
    fn neg(self) -> Self;
    /// Multiplicative inverse (reference for packed reciprocal diagonals).
    fn recip(self) -> Self;
    /// `self + a·b` using the same contraction as the kernels where possible.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Builds an element from `f64` components (imaginary ignored for reals).
    fn from_f64s(re: f64, im: f64) -> Self;
    /// Real component.
    fn re(self) -> Self::Real;
    /// Imaginary component (zero for reals).
    fn im(self) -> Self::Real;
    /// Modulus as `f64` (absolute value for reals) for error norms.
    fn abs_f64(self) -> f64;
    /// True when all components are finite.
    fn is_finite(self) -> bool;
}

impl Element for f32 {
    type Real = f32;
    const DTYPE: DType = DType::F32;
    const IS_COMPLEX: bool = false;
    const SCALARS: usize = 1;
    const P: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline(always)]
    fn neg(self) -> Self {
        -self
    }
    #[inline(always)]
    fn recip(self) -> Self {
        Real::recip(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Real::mul_add(self, a, b)
    }
    #[inline(always)]
    fn from_f64s(re: f64, _im: f64) -> Self {
        re as f32
    }
    #[inline(always)]
    fn re(self) -> f32 {
        self
    }
    #[inline(always)]
    fn im(self) -> f32 {
        0.0
    }
    #[inline(always)]
    fn abs_f64(self) -> f64 {
        (self as f64).abs()
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Element for f64 {
    type Real = f64;
    const DTYPE: DType = DType::F64;
    const IS_COMPLEX: bool = false;
    const SCALARS: usize = 1;
    const P: usize = 2;

    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline(always)]
    fn neg(self) -> Self {
        -self
    }
    #[inline(always)]
    fn recip(self) -> Self {
        Real::recip(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        Real::mul_add(self, a, b)
    }
    #[inline(always)]
    fn from_f64s(re: f64, _im: f64) -> Self {
        re
    }
    #[inline(always)]
    fn re(self) -> f64 {
        self
    }
    #[inline(always)]
    fn im(self) -> f64 {
        0.0
    }
    #[inline(always)]
    fn abs_f64(self) -> f64 {
        f64::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

macro_rules! impl_complex_element {
    ($t:ty, $real:ty, $dtype:expr, $p:expr) => {
        impl Element for $t {
            type Real = $real;
            const DTYPE: DType = $dtype;
            const IS_COMPLEX: bool = true;
            const SCALARS: usize = 2;
            const P: usize = $p;

            #[inline(always)]
            fn zero() -> Self {
                Complex::zero()
            }
            #[inline(always)]
            fn one() -> Self {
                Complex::one()
            }
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                self - rhs
            }
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                self * rhs
            }
            #[inline(always)]
            fn neg(self) -> Self {
                -self
            }
            #[inline(always)]
            fn recip(self) -> Self {
                Complex::recip(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // Mirrors CVec::fma's contraction order: each component is a
                // chain of two scalar FMAs.
                let re = Real::mul_sub(Real::mul_add(self.re, a.re, b.re), a.im, b.im);
                let im = Real::mul_add(Real::mul_add(self.im, a.re, b.im), a.im, b.re);
                Complex::new(re, im)
            }
            #[inline(always)]
            fn from_f64s(re: f64, im: f64) -> Self {
                Complex::new(<$real as Real>::from_f64(re), <$real as Real>::from_f64(im))
            }
            #[inline(always)]
            fn re(self) -> $real {
                self.re
            }
            #[inline(always)]
            fn im(self) -> $real {
                self.im
            }
            #[inline(always)]
            fn abs_f64(self) -> f64 {
                let re = self.re.to_f64();
                let im = self.im.to_f64();
                (re * re + im * im).sqrt()
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                Complex::is_finite(self)
            }
        }
    };
}

impl_complex_element!(c32, f32, DType::C32, 4);
impl_complex_element!(c64, f64, DType::C64, 2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_at_scales_with_width() {
        assert_eq!(f32::p_at(VecWidth::W128), 4);
        assert_eq!(f32::p_at(VecWidth::W256), 8);
        assert_eq!(f32::p_at(VecWidth::W512), 16);
        assert_eq!(f64::p_at(VecWidth::W512), 8);
        assert_eq!(c32::p_at(VecWidth::W256), 8);
        assert_eq!(c64::p_at(VecWidth::W256), 4);
        // Scalar mirrors the 128-bit layout; baseline P is the W128 value.
        for dt in DType::ALL {
            assert_eq!(dt.p_at(VecWidth::Scalar), dt.p());
            assert_eq!(dt.p_at(VecWidth::W128), dt.p());
        }
    }

    #[test]
    fn p_matches_simd_width() {
        assert_eq!(f32::P, SIMD_BYTES / 4);
        assert_eq!(f64::P, SIMD_BYTES / 8);
        assert_eq!(c32::P, SIMD_BYTES / 4);
        assert_eq!(c64::P, SIMD_BYTES / 8);
        for dt in DType::ALL {
            assert_eq!(
                dt.p(),
                match dt {
                    DType::F32 => f32::P,
                    DType::F64 => f64::P,
                    DType::C32 => c32::P,
                    DType::C64 => c64::P,
                }
            );
        }
    }

    #[test]
    fn dtype_metadata() {
        assert!(!DType::F32.is_complex());
        assert!(DType::C64.is_complex());
        assert_eq!(DType::F32.elem_bytes(), 4);
        assert_eq!(DType::C32.elem_bytes(), 8);
        assert_eq!(DType::C64.elem_bytes(), 16);
        assert_eq!(DType::F64.flops_per_mac(), 2);
        assert_eq!(DType::C32.flops_per_mac(), 8);
        let prefixes: Vec<char> = DType::ALL.iter().map(|d| d.prefix()).collect();
        assert_eq!(prefixes, ['s', 'd', 'c', 'z']);
    }

    fn element_algebra<E: Element>() {
        let a = E::from_f64s(2.0, -1.0);
        let b = E::from_f64s(-3.0, 0.5);
        assert_eq!(a.add(E::zero()), a);
        assert_eq!(a.mul(E::one()), a);
        assert_eq!(a.sub(a), E::zero());
        assert_eq!(a.neg().add(a), E::zero());
        // recip is a right inverse up to rounding
        let prod = a.mul(a.recip());
        assert!((prod.re().to_f64() - 1.0).abs() < 1e-5);
        assert!(prod.im().to_f64().abs() < 1e-5);
        // mul_add consistent with mul+add up to contraction
        let fused = E::zero().mul_add(a, b);
        let plain = a.mul(b);
        assert!((fused.re().to_f64() - plain.re().to_f64()).abs() < 1e-5);
        assert!((fused.im().to_f64() - plain.im().to_f64()).abs() < 1e-5);
        assert!(a.is_finite());
    }

    #[test]
    fn algebra_all_types() {
        element_algebra::<f32>();
        element_algebra::<f64>();
        element_algebra::<c32>();
        element_algebra::<c64>();
    }
}
