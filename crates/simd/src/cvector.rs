//! Split-complex vector: a (real, imaginary) pair of 128-bit vectors.
//!
//! In the compact layout a complex element group occupies `2·P` scalars —
//! `P` real parts followed by `P` imaginary parts — so a complex "value" in a
//! kernel is a pair of vectors. The multiply-accumulate rules below expand to
//! exactly four FMA-class instructions per complex FMA, matching the paper's
//! complex-kernel instruction count (`4·m_c·n_c` compute ops, Eq. 3).

use crate::vector::SimdReal;

/// A vector of `P` complex numbers in split (planar) representation.
#[derive(Copy, Clone, Debug)]
pub struct CVec<V> {
    /// Real plane.
    pub re: V,
    /// Imaginary plane.
    pub im: V,
}

impl<V: SimdReal> CVec<V> {
    /// All-zero complex vector.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            re: V::zero(),
            im: V::zero(),
        }
    }

    /// Broadcasts a complex scalar given as `(re, im)`.
    #[inline(always)]
    pub fn splat(re: V::Scalar, im: V::Scalar) -> Self {
        Self {
            re: V::splat(re),
            im: V::splat(im),
        }
    }

    /// Loads a split-complex element group: `P` reals at `ptr`, `P`
    /// imaginaries at `ptr + P`.
    ///
    /// # Safety
    /// `ptr` must point to at least `2·P` readable scalars.
    #[inline(always)]
    pub unsafe fn load(ptr: *const V::Scalar) -> Self {
        Self {
            re: V::load(ptr),
            im: V::load(ptr.add(V::LANES)),
        }
    }

    /// Stores a split-complex element group (see [`CVec::load`]).
    ///
    /// # Safety
    /// `ptr` must point to at least `2·P` writable scalars.
    #[inline(always)]
    pub unsafe fn store(self, ptr: *mut V::Scalar) {
        self.re.store(ptr);
        self.im.store(ptr.add(V::LANES));
    }

    /// Lane-wise complex addition.
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re.add(rhs.re),
            im: self.im.add(rhs.im),
        }
    }

    /// Lane-wise complex subtraction.
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re.sub(rhs.re),
            im: self.im.sub(rhs.im),
        }
    }

    /// Complex multiply (4 mul-class + 2 add-class ops; kernels prefer
    /// [`CVec::fma`] which fuses the accumulate).
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re.mul(rhs.re).fms(self.im, rhs.im),
            im: self.re.mul(rhs.im).fma(self.im, rhs.re),
        }
    }

    /// Complex fused multiply-add `self + a·b`, expanded to four FMA-class
    /// instructions:
    /// `re += a.re·b.re; re -= a.im·b.im; im += a.re·b.im; im += a.im·b.re`.
    #[inline(always)]
    pub fn fma(self, a: Self, b: Self) -> Self {
        Self {
            re: self.re.fma(a.re, b.re).fms(a.im, b.im),
            im: self.im.fma(a.re, b.im).fma(a.im, b.re),
        }
    }

    /// Complex fused multiply-subtract `self - a·b` (four FMA-class
    /// instructions; the TRSM rectangular-kernel update of Eq. 4).
    #[inline(always)]
    pub fn fms(self, a: Self, b: Self) -> Self {
        Self {
            re: self.re.fms(a.re, b.re).fma(a.im, b.im),
            im: self.im.fms(a.re, b.im).fms(a.im, b.re),
        }
    }

    /// Multiplies by a complex scalar broadcast (`alpha` scaling in SAVE).
    #[inline(always)]
    pub fn scale(self, re: V::Scalar, im: V::Scalar) -> Self {
        let alpha = Self::splat(re, im);
        Self::zero().fma(self, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::real::Real;
    use crate::vector::{F32x4, F64x2};

    fn cvec_matches_scalar<V: SimdReal>() {
        // Independent complex values per lane, checked against the scalar
        // Complex arithmetic lane by lane.
        let p = V::LANES;
        let mk = |base: f64| -> (Vec<V::Scalar>, Vec<Complex<V::Scalar>>) {
            let mut split = vec![V::Scalar::ZERO; 2 * p];
            let mut pairs = Vec::with_capacity(p);
            for l in 0..p {
                let re = V::Scalar::from_f64(base + l as f64 * 0.5);
                let im = V::Scalar::from_f64(-base + l as f64 * 0.25);
                split[l] = re;
                split[p + l] = im;
                pairs.push(Complex::new(re, im));
            }
            (split, pairs)
        };
        let (sa, ca) = mk(1.5);
        let (sb, cb) = mk(-2.25);
        let (sc, cc) = mk(0.75);
        // SAFETY: each split buffer from `mk` has `2 * LANES` elements — exactly one split-layout vector (covers the three loads below).
        let va = unsafe { CVec::<V>::load(sa.as_ptr()) };
        let vb = unsafe { CVec::<V>::load(sb.as_ptr()) };
        let vc = unsafe { CVec::<V>::load(sc.as_ptr()) };

        let check = |got: CVec<V>, want: &dyn Fn(usize) -> Complex<V::Scalar>, tol: f64| {
            let mut out = vec![V::Scalar::ZERO; 2 * p];
            // SAFETY: `out` has `2 * LANES` elements — exactly one split-layout vector.
            unsafe { got.store(out.as_mut_ptr()) };
            for l in 0..p {
                let w = want(l);
                assert!(
                    (out[l].to_f64() - w.re.to_f64()).abs() <= tol,
                    "re lane {l}: {} vs {}",
                    out[l],
                    w.re
                );
                assert!(
                    (out[p + l].to_f64() - w.im.to_f64()).abs() <= tol,
                    "im lane {l}: {} vs {}",
                    out[p + l],
                    w.im
                );
            }
        };

        // FMA contraction changes rounding vs the scalar two-step formula;
        // allow a small relative tolerance.
        let tol = if V::Scalar::BYTES == 4 { 1e-5 } else { 1e-13 };
        check(va.add(vb), &|l| ca[l] + cb[l], 0.0);
        check(va.sub(vb), &|l| ca[l] - cb[l], 0.0);
        check(va.mul(vb), &|l| ca[l] * cb[l], tol);
        check(vc.fma(va, vb), &|l| cc[l] + ca[l] * cb[l], tol);
        check(vc.fms(va, vb), &|l| cc[l] - ca[l] * cb[l], tol);
        check(va.scale(cb[0].re, cb[0].im), &|l| ca[l] * cb[0], tol);
    }

    #[test]
    fn cvec_f32() {
        cvec_matches_scalar::<F32x4>();
    }

    #[test]
    fn cvec_f64() {
        cvec_matches_scalar::<F64x2>();
    }

    #[test]
    fn split_layout_round_trip() {
        let src: [f64; 4] = [1.0, 2.0, 10.0, 20.0]; // re0 re1 | im0 im1
        // SAFETY: `src` has `2 * LANES` elements — exactly one split-layout vector.
        let v = unsafe { CVec::<F64x2>::load(src.as_ptr()) };
        assert_eq!(&v.re.to_array()[..2], &[1.0, 2.0]);
        assert_eq!(&v.im.to_array()[..2], &[10.0, 20.0]);
        let mut out = [0.0f64; 4];
        // SAFETY: `out` has `2 * LANES` elements — exactly one split-layout vector.
        unsafe { v.store(out.as_mut_ptr()) };
        assert_eq!(out, src);
    }
}
