//! Architecture backends for the 128-bit vector types.
//!
//! Exactly one backend is compiled in:
//! * `aarch64` → NEON intrinsics (the paper's target ISA),
//! * `x86_64` → SSE2, with FMA contraction when the `fma` target feature is
//!   enabled (the workspace builds with `target-cpu=native`),
//! * anything else → a scalar array fallback with identical semantics.

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "aarch64")]
pub use neon::{F32x4, F64x2};

#[cfg(target_arch = "x86_64")]
mod x86;
#[cfg(target_arch = "x86_64")]
pub use x86::{F32x4, F64x2};

#[cfg(not(any(target_arch = "aarch64", target_arch = "x86_64")))]
mod scalar;
#[cfg(not(any(target_arch = "aarch64", target_arch = "x86_64")))]
pub use scalar::{F32x4, F64x2};

// The scalar backend is always compiled (dead-code allowed) so its semantics
// stay checked on every host; cross-backend agreement is asserted in tests.
#[cfg(all(test, any(target_arch = "aarch64", target_arch = "x86_64")))]
#[path = "scalar.rs"]
pub(crate) mod scalar_ref;

#[cfg(test)]
mod tests {
    #![allow(clippy::excessive_precision)]
    use crate::vector::SimdReal;

    /// The hardware backend must agree with the scalar reference on a grid of
    /// values including negatives, subnormal-ish magnitudes and exact powers
    /// of two.
    #[cfg(any(target_arch = "aarch64", target_arch = "x86_64"))]
    #[test]
    fn agrees_with_scalar_reference_f64() {
        use super::scalar_ref;
        let xs = [-3.5f64, 1.0e-300, 2.0, 0.015625];
        let ys = [7.25f64, -2.0, 1.0e10, -0.5];
        let zs = [0.0f64, 1.0, -1.0e-5, 123.456];
        let hw_x = super::F64x2::from_slice(&xs[..2]);
        let hw_y = super::F64x2::from_slice(&ys[..2]);
        let hw_z = super::F64x2::from_slice(&zs[..2]);
        let sc_x = scalar_ref::F64x2::from_slice(&xs[..2]);
        let sc_y = scalar_ref::F64x2::from_slice(&ys[..2]);
        let sc_z = scalar_ref::F64x2::from_slice(&zs[..2]);
        assert_eq!(hw_x.add(hw_y).to_array(), sc_x.add(sc_y).to_array());
        assert_eq!(hw_x.sub(hw_y).to_array(), sc_x.sub(sc_y).to_array());
        assert_eq!(hw_x.mul(hw_y).to_array(), sc_x.mul(sc_y).to_array());
        assert_eq!(hw_x.div(hw_y).to_array(), sc_x.div(sc_y).to_array());
        assert_eq!(hw_x.neg().to_array(), sc_x.neg().to_array());
        assert_eq!(
            hw_z.fma(hw_x, hw_y).to_array(),
            sc_z.fma(sc_x, sc_y).to_array()
        );
        assert_eq!(
            hw_z.fms(hw_x, hw_y).to_array(),
            sc_z.fms(sc_x, sc_y).to_array()
        );
    }

    #[cfg(any(target_arch = "aarch64", target_arch = "x86_64"))]
    #[test]
    fn agrees_with_scalar_reference_f32() {
        use super::scalar_ref;
        let xs = [-3.5f32, 1.0e-30, 2.0, 0.015625];
        let ys = [7.25f32, -2.0, 1.0e10, -0.5];
        let zs = [0.0f32, 1.0, -1.0e-5, 123.456];
        let hw_x = super::F32x4::from_slice(&xs);
        let hw_y = super::F32x4::from_slice(&ys);
        let hw_z = super::F32x4::from_slice(&zs);
        let sc_x = scalar_ref::F32x4::from_slice(&xs);
        let sc_y = scalar_ref::F32x4::from_slice(&ys);
        let sc_z = scalar_ref::F32x4::from_slice(&zs);
        assert_eq!(hw_x.add(hw_y).to_array(), sc_x.add(sc_y).to_array());
        assert_eq!(hw_x.sub(hw_y).to_array(), sc_x.sub(sc_y).to_array());
        assert_eq!(hw_x.mul(hw_y).to_array(), sc_x.mul(sc_y).to_array());
        assert_eq!(hw_x.div(hw_y).to_array(), sc_x.div(sc_y).to_array());
        assert_eq!(hw_x.neg().to_array(), sc_x.neg().to_array());
        assert_eq!(
            hw_z.fma(hw_x, hw_y).to_array(),
            sc_z.fma(sc_x, sc_y).to_array()
        );
        assert_eq!(
            hw_z.fms(hw_x, hw_y).to_array(),
            sc_z.fms(sc_x, sc_y).to_array()
        );
    }
}
