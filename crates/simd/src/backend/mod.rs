//! Architecture backends for the vector types.
//!
//! The *128-bit* types `F32x4`/`F64x2` get exactly one hardware backend:
//! * `aarch64` → NEON intrinsics (the paper's target ISA),
//! * `x86_64` → SSE2, with FMA contraction when the `fma` target feature is
//!   enabled (not the case for baseline builds),
//! * anything else → aliases of the scalar backend.
//!
//! The scalar backend (`S32x4`/`S64x2`) is compiled on every architecture —
//! it is the `VecWidth::Scalar` dispatch target and the reference the
//! hardware backends are tested against. On `x86_64` the wide backends
//! (`F32x8`/`F64x4` for AVX2+FMA, `F32x16`/`F64x8` for AVX-512F) are compiled
//! in as well; they may only be *executed* after runtime feature detection
//! (see each module's safety contract).

mod scalar;
pub use scalar::{S32x4, S64x2};

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "aarch64")]
pub use neon::{F32x4, F64x2};

#[cfg(target_arch = "x86_64")]
mod x86;
#[cfg(target_arch = "x86_64")]
pub use x86::{F32x4, F64x2};

#[cfg(target_arch = "x86_64")]
mod avx;
#[cfg(target_arch = "x86_64")]
mod avx512;
#[cfg(target_arch = "x86_64")]
pub use avx::{F32x8, F64x4};
#[cfg(target_arch = "x86_64")]
pub use avx512::{F32x16, F64x8};

/// On architectures without a hardware backend the scalar types double as
/// the 128-bit types (same lane counts, same semantics).
#[cfg(not(any(target_arch = "aarch64", target_arch = "x86_64")))]
pub use scalar::{S32x4 as F32x4, S64x2 as F64x2};

#[cfg(test)]
mod tests {
    #![allow(clippy::excessive_precision)]
    use crate::vector::SimdReal;

    /// The hardware backend must agree with the scalar reference on a grid of
    /// values including negatives, subnormal-ish magnitudes and exact powers
    /// of two.
    #[cfg(any(target_arch = "aarch64", target_arch = "x86_64"))]
    #[test]
    fn agrees_with_scalar_reference_f64() {
        use super::scalar;
        let xs = [-3.5f64, 1.0e-300, 2.0, 0.015625];
        let ys = [7.25f64, -2.0, 1.0e10, -0.5];
        let zs = [0.0f64, 1.0, -1.0e-5, 123.456];
        let hw_x = super::F64x2::from_slice(&xs[..2]);
        let hw_y = super::F64x2::from_slice(&ys[..2]);
        let hw_z = super::F64x2::from_slice(&zs[..2]);
        let sc_x = scalar::S64x2::from_slice(&xs[..2]);
        let sc_y = scalar::S64x2::from_slice(&ys[..2]);
        let sc_z = scalar::S64x2::from_slice(&zs[..2]);
        assert_eq!(hw_x.add(hw_y).to_array(), sc_x.add(sc_y).to_array());
        assert_eq!(hw_x.sub(hw_y).to_array(), sc_x.sub(sc_y).to_array());
        assert_eq!(hw_x.mul(hw_y).to_array(), sc_x.mul(sc_y).to_array());
        assert_eq!(hw_x.div(hw_y).to_array(), sc_x.div(sc_y).to_array());
        assert_eq!(hw_x.neg().to_array(), sc_x.neg().to_array());
        assert_eq!(
            hw_z.fma(hw_x, hw_y).to_array(),
            sc_z.fma(sc_x, sc_y).to_array()
        );
        assert_eq!(
            hw_z.fms(hw_x, hw_y).to_array(),
            sc_z.fms(sc_x, sc_y).to_array()
        );
    }

    #[cfg(any(target_arch = "aarch64", target_arch = "x86_64"))]
    #[test]
    fn agrees_with_scalar_reference_f32() {
        use super::scalar;
        let xs = [-3.5f32, 1.0e-30, 2.0, 0.015625];
        let ys = [7.25f32, -2.0, 1.0e10, -0.5];
        let zs = [0.0f32, 1.0, -1.0e-5, 123.456];
        let hw_x = super::F32x4::from_slice(&xs);
        let hw_y = super::F32x4::from_slice(&ys);
        let hw_z = super::F32x4::from_slice(&zs);
        let sc_x = scalar::S32x4::from_slice(&xs);
        let sc_y = scalar::S32x4::from_slice(&ys);
        let sc_z = scalar::S32x4::from_slice(&zs);
        assert_eq!(hw_x.add(hw_y).to_array(), sc_x.add(sc_y).to_array());
        assert_eq!(hw_x.sub(hw_y).to_array(), sc_x.sub(sc_y).to_array());
        assert_eq!(hw_x.mul(hw_y).to_array(), sc_x.mul(sc_y).to_array());
        assert_eq!(hw_x.div(hw_y).to_array(), sc_x.div(sc_y).to_array());
        assert_eq!(hw_x.neg().to_array(), sc_x.neg().to_array());
        assert_eq!(
            hw_z.fma(hw_x, hw_y).to_array(),
            sc_z.fma(sc_x, sc_y).to_array()
        );
        assert_eq!(
            hw_z.fms(hw_x, hw_y).to_array(),
            sc_z.fms(sc_x, sc_y).to_array()
        );
    }

    /// The wide x86 backends must agree with the scalar reference lane for
    /// lane on fused-rounding-neutral values (the grid above rounds the same
    /// fused or unfused, so SSE2-without-FMA hosts also pass).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn wide_backends_agree_with_scalar_reference() {
        use crate::width::{width_available, VecWidth};

        fn check<V: SimdReal>()
        where
            V::Scalar: Into<f64> + Copy + From<f32>,
        {
            let mut xs = [V::Scalar::from(0.0f32); 16];
            let mut ys = [V::Scalar::from(0.0f32); 16];
            let mut zs = [V::Scalar::from(0.0f32); 16];
            let grid_x = [-3.5f32, 2.0, 0.015625, 128.0];
            let grid_y = [7.25f32, -2.0, -0.5, 0.25];
            let grid_z = [0.0f32, 1.0, -4.0, 123.5];
            for i in 0..V::LANES {
                xs[i] = V::Scalar::from(grid_x[i % 4]);
                ys[i] = V::Scalar::from(grid_y[i % 4]);
                zs[i] = V::Scalar::from(grid_z[i % 4]);
            }
            let vx = V::from_slice(&xs[..V::LANES]);
            let vy = V::from_slice(&ys[..V::LANES]);
            let vz = V::from_slice(&zs[..V::LANES]);
            let got = vz.fma(vx, vy).to_array();
            let sum = vx.add(vy).to_array();
            let neg = vx.neg().to_array();
            for i in 0..V::LANES {
                let (x, y, z): (f64, f64, f64) = (xs[i].into(), ys[i].into(), zs[i].into());
                assert_eq!(got.as_ref()[i].into(), z + x * y, "fma lane {i}");
                assert_eq!(sum.as_ref()[i].into(), x + y, "add lane {i}");
                assert_eq!(neg.as_ref()[i].into(), -x, "neg lane {i}");
            }
        }

        if width_available(VecWidth::W256) {
            check::<super::F32x8>();
            check::<super::F64x4>();
        }
        if width_available(VecWidth::W512) {
            check::<super::F32x16>();
            check::<super::F64x8>();
        }
    }
}
