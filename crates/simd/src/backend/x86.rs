//! x86_64 backend: SSE2 128-bit vectors, FMA contraction when available.
//!
//! The Kunpeng 920's NEON unit is 128 bits wide; using SSE (not AVX) keeps
//! the vector width, lane count `P`, and register-blocking arithmetic of the
//! paper intact on x86_64 hosts. When the `fma` target feature is enabled at
//! compile time (the workspace builds with `target-cpu=native`), `fma`/`fms`
//! lower to `vfmadd`/`vfnmadd`; otherwise they fall back to mul+add, which
//! only differs in the intermediate rounding.

use crate::real::Real;
use crate::vector::SimdReal;
use core::arch::x86_64::*;

/// Four `f32` lanes in one 128-bit register (`P = 4`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x4(pub(crate) __m128);

/// Two `f64` lanes in one 128-bit register (`P = 2`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x2(pub(crate) __m128d);

impl core::fmt::Debug for F32x4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F32x4({:?})", self.to_array())
    }
}

impl core::fmt::Debug for F64x2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F64x2({:?})", self.to_array())
    }
}

// Safety: __m128/__m128d are plain 128-bit values.
unsafe impl Send for F32x4 {}
unsafe impl Sync for F32x4 {}
unsafe impl Send for F64x2 {}
unsafe impl Sync for F64x2 {}

impl SimdReal for F32x4 {
    type Scalar = f32;
    type Lanes = [f32; 4];
    const LANES: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_setzero_ps() })
    }

    #[inline(always)]
    fn splat(x: f32) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_set1_ps(x) })
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
    unsafe fn load(ptr: *const f32) -> Self {
        Self(_mm_loadu_ps(ptr))
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
    unsafe fn store(self, ptr: *mut f32) {
        _mm_storeu_ps(ptr, self.0);
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_add_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_sub_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_mul_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_div_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn neg(self) -> Self {
        // sign-bit flip, matching NEON FNEG semantics (0 − x would lose the
        // sign of zero)
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_xor_ps(self.0, _mm_set1_ps(-0.0)) })
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        #[cfg(target_feature = "fma")]
        {
            // SAFETY: value-only FMA intrinsic on register operands; this branch only compiles when the `fma` target feature is statically enabled.
            Self(unsafe { _mm_fmadd_ps(a.0, b.0, self.0) })
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self.add(a.mul(b))
        }
    }

    #[inline(always)]
    fn fms(self, a: Self, b: Self) -> Self {
        #[cfg(target_feature = "fma")]
        {
            // SAFETY: value-only FMA intrinsic on register operands; this branch only compiles when the `fma` target feature is statically enabled.
            Self(unsafe { _mm_fnmadd_ps(a.0, b.0, self.0) })
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self.sub(a.mul(b))
        }
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        // SAFETY: `out` is a local array with at least `LANES` elements, so the unaligned store stays in bounds.
        unsafe { _mm_storeu_ps(out.as_mut_ptr(), self.0) };
        out
    }
}

impl SimdReal for F64x2 {
    type Scalar = f64;
    type Lanes = [f64; 2];
    const LANES: usize = 2;

    #[inline(always)]
    fn zero() -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_setzero_pd() })
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_set1_pd(x) })
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
    unsafe fn load(ptr: *const f64) -> Self {
        Self(_mm_loadu_pd(ptr))
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
    unsafe fn store(self, ptr: *mut f64) {
        _mm_storeu_pd(ptr, self.0);
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_add_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_sub_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_mul_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_div_pd(self.0, rhs.0) })
    }

    #[inline(always)]
    fn neg(self) -> Self {
        // sign-bit flip, matching NEON FNEG semantics
        // SAFETY: value-only SSE2 intrinsic on register operands; no memory is touched, and SSE2 is baseline on x86_64 (this module only compiles there).
        Self(unsafe { _mm_xor_pd(self.0, _mm_set1_pd(-0.0)) })
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        #[cfg(target_feature = "fma")]
        {
            // SAFETY: value-only FMA intrinsic on register operands; this branch only compiles when the `fma` target feature is statically enabled.
            Self(unsafe { _mm_fmadd_pd(a.0, b.0, self.0) })
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self.add(a.mul(b))
        }
    }

    #[inline(always)]
    fn fms(self, a: Self, b: Self) -> Self {
        #[cfg(target_feature = "fma")]
        {
            // SAFETY: value-only FMA intrinsic on register operands; this branch only compiles when the `fma` target feature is statically enabled.
            Self(unsafe { _mm_fnmadd_pd(a.0, b.0, self.0) })
        }
        #[cfg(not(target_feature = "fma"))]
        {
            self.sub(a.mul(b))
        }
    }

    #[inline(always)]
    fn to_array(self) -> [f64; 2] {
        let mut out = [0.0f64; 2];
        // SAFETY: `out` is a local array with exactly `LANES` elements, so the unaligned store stays in bounds.
        unsafe { _mm_storeu_pd(out.as_mut_ptr(), self.0) };
        out
    }
}

// Keep the unused `Real` import honest on both cfg branches.
const _: () = {
    let _ = f32::BYTES;
};
