//! aarch64 backend: NEON intrinsics — the paper's native ISA.
//!
//! `fma`/`fms` map to `FMLA`/`FMLS` exactly as in the paper's generated
//! kernels (Algorithm 2 and the FMLS rectangular TRSM kernels of §4.2.2).

use crate::vector::SimdReal;
use core::arch::aarch64::*;

/// Four `f32` lanes in one 128-bit NEON register (`P = 4`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x4(pub(crate) float32x4_t);

/// Two `f64` lanes in one 128-bit NEON register (`P = 2`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x2(pub(crate) float64x2_t);

impl core::fmt::Debug for F32x4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F32x4({:?})", self.to_array())
    }
}

impl core::fmt::Debug for F64x2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F64x2({:?})", self.to_array())
    }
}

// Safety: NEON vector types are plain 128-bit values.
unsafe impl Send for F32x4 {}
unsafe impl Sync for F32x4 {}
unsafe impl Send for F64x2 {}
unsafe impl Sync for F64x2 {}

impl SimdReal for F32x4 {
    type Scalar = f32;
    type Lanes = [f32; 4];
    const LANES: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vdupq_n_f32(0.0) })
    }

    #[inline(always)]
    fn splat(x: f32) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vdupq_n_f32(x) })
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the intrinsic adds no further requirements.
    unsafe fn load(ptr: *const f32) -> Self {
        Self(vld1q_f32(ptr))
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the intrinsic adds no further requirements.
    unsafe fn store(self, ptr: *mut f32) {
        vst1q_f32(ptr, self.0)
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vaddq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vsubq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vmulq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vdivq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn neg(self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vnegq_f32(self.0) })
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        // FMLA Vd, Vn, Vm : Vd += Vn * Vm
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vfmaq_f32(self.0, a.0, b.0) })
    }

    #[inline(always)]
    fn fms(self, a: Self, b: Self) -> Self {
        // FMLS Vd, Vn, Vm : Vd -= Vn * Vm
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vfmsq_f32(self.0, a.0, b.0) })
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        // SAFETY: `out` is a local array with at least `LANES` elements, so the store stays in bounds.
        unsafe { vst1q_f32(out.as_mut_ptr(), self.0) };
        out
    }
}

impl SimdReal for F64x2 {
    type Scalar = f64;
    type Lanes = [f64; 2];
    const LANES: usize = 2;

    #[inline(always)]
    fn zero() -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vdupq_n_f64(0.0) })
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vdupq_n_f64(x) })
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the intrinsic adds no further requirements.
    unsafe fn load(ptr: *const f64) -> Self {
        Self(vld1q_f64(ptr))
    }

    #[inline(always)]
    // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the intrinsic adds no further requirements.
    unsafe fn store(self, ptr: *mut f64) {
        vst1q_f64(ptr, self.0)
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vaddq_f64(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vsubq_f64(self.0, rhs.0) })
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vmulq_f64(self.0, rhs.0) })
    }

    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vdivq_f64(self.0, rhs.0) })
    }

    #[inline(always)]
    fn neg(self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vnegq_f64(self.0) })
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vfmaq_f64(self.0, a.0, b.0) })
    }

    #[inline(always)]
    fn fms(self, a: Self, b: Self) -> Self {
        // SAFETY: value-only NEON intrinsic on register operands; no memory is touched, and NEON is baseline on aarch64 (this module only compiles there).
        Self(unsafe { vfmsq_f64(self.0, a.0, b.0) })
    }

    #[inline(always)]
    fn to_array(self) -> [f64; 2] {
        let mut out = [0.0f64; 2];
        // SAFETY: `out` is a local array with exactly `LANES` elements, so the store stays in bounds.
        unsafe { vst1q_f64(out.as_mut_ptr(), self.0) };
        out
    }
}
