//! x86_64 256-bit backend: AVX2 + FMA vectors (`VecWidth::W256`).
//!
//! Doubles the paper's interleaving factor to `P = 8` (f32) / `P = 4` (f64):
//! one 256-bit register holds the same matrix element of eight (four)
//! consecutive batch matrices, so each `vfmadd` advances twice as many
//! problems as the 128-bit baseline.
//!
//! # Module safety contract
//! The workspace builds for baseline x86_64 (SSE2 only), so AVX/FMA are
//! *not* statically enabled — every function here carries
//! `#[target_feature(enable = "avx", enable = "avx2", enable = "fma")]` and
//! is therefore `unsafe` to call: the caller must guarantee the host
//! supports AVX2+FMA. That guarantee is provided by runtime dispatch —
//! these types are only reachable through kernel tables selected after
//! [`crate::width::width_available`]`(VecWidth::W256)` confirms the probe
//! (`is_x86_feature_detected!("avx2")` && `("fma")`), and through tests that
//! perform the same check. Unlike the SSE2 backend there is no mul+add
//! fallback: FMA is part of the width's contract, so `fma`/`fms` are always
//! fused (single rounding per lane).

use crate::vector::SimdReal;
use core::arch::x86_64::*;

/// Eight `f32` lanes in one 256-bit AVX register (`P = 8`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x8(__m256);

/// Four `f64` lanes in one 256-bit AVX register (`P = 4`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x4(__m256d);

impl core::fmt::Debug for F32x8 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F32x8({:?})", self.to_array())
    }
}

impl core::fmt::Debug for F64x4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F64x4({:?})", self.to_array())
    }
}

// Safety: __m256/__m256d are plain 256-bit values.
unsafe impl Send for F32x8 {}
unsafe impl Sync for F32x8 {}
unsafe impl Send for F64x4 {}
unsafe impl Sync for F64x4 {}

macro_rules! impl_avx_vec {
    (
        $name:ident, $t:ty, $lanes:expr, $reg:ty,
        $setzero:ident, $set1:ident, $loadu:ident, $storeu:ident,
        $add:ident, $sub:ident, $mul:ident, $div:ident, $xor:ident,
        $fmadd:ident, $fnmadd:ident
    ) => {
        impl SimdReal for $name {
            type Scalar = $t;
            type Lanes = [$t; $lanes];
            const LANES: usize = $lanes;

            #[inline(always)]
            fn zero() -> Self {
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $setzero() })
            }

            #[inline(always)]
            fn splat(x: $t) -> Self {
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $set1(x) })
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
            unsafe fn load(ptr: *const $t) -> Self {
                Self($loadu(ptr))
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
            unsafe fn store(self, ptr: *mut $t) {
                $storeu(ptr, self.0);
            }

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $add(self.0, rhs.0) })
            }

            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $sub(self.0, rhs.0) })
            }

            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $mul(self.0, rhs.0) })
            }

            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $div(self.0, rhs.0) })
            }

            #[inline(always)]
            fn neg(self) -> Self {
                // sign-bit flip, matching NEON FNEG semantics (0 − x would
                // lose the sign of zero)
                // SAFETY: value-only AVX intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX2+FMA) holds.
                Self(unsafe { $xor(self.0, $set1(-0.0)) })
            }

            #[inline(always)]
            fn fma(self, a: Self, b: Self) -> Self {
                // SAFETY: value-only FMA intrinsic on register operands; FMA support is part of this module's W256 contract (runtime-verified before dispatch).
                Self(unsafe { $fmadd(a.0, b.0, self.0) })
            }

            #[inline(always)]
            fn fms(self, a: Self, b: Self) -> Self {
                // SAFETY: value-only FMA intrinsic on register operands; FMA support is part of this module's W256 contract (runtime-verified before dispatch).
                Self(unsafe { $fnmadd(a.0, b.0, self.0) })
            }

            #[inline(always)]
            fn to_array(self) -> [$t; $lanes] {
                let mut out = [0.0; $lanes];
                // SAFETY: `out` is a local array with exactly `LANES` elements, so the unaligned store stays in bounds.
                unsafe { $storeu(out.as_mut_ptr(), self.0) };
                out
            }
        }
    };
}

impl_avx_vec!(
    F32x8, f32, 8, __m256,
    _mm256_setzero_ps, _mm256_set1_ps, _mm256_loadu_ps, _mm256_storeu_ps,
    _mm256_add_ps, _mm256_sub_ps, _mm256_mul_ps, _mm256_div_ps, _mm256_xor_ps,
    _mm256_fmadd_ps, _mm256_fnmadd_ps
);

impl_avx_vec!(
    F64x4, f64, 4, __m256d,
    _mm256_setzero_pd, _mm256_set1_pd, _mm256_loadu_pd, _mm256_storeu_pd,
    _mm256_add_pd, _mm256_sub_pd, _mm256_mul_pd, _mm256_div_pd, _mm256_xor_pd,
    _mm256_fmadd_pd, _mm256_fnmadd_pd
);
