//! Portable scalar backend: arrays of lanes with the same semantics as the
//! hardware backends. Used on architectures without a dedicated backend and,
//! in tests, as the reference the hardware backends are checked against.

#![allow(dead_code)]

use crate::real::Real;
use crate::vector::SimdReal;

/// Four `f32` lanes emulated with an array.
#[derive(Copy, Clone, Debug)]
pub struct F32x4(pub(crate) [f32; 4]);

/// Two `f64` lanes emulated with an array.
#[derive(Copy, Clone, Debug)]
pub struct F64x2(pub(crate) [f64; 2]);

macro_rules! impl_scalar_vec {
    ($name:ident, $t:ty, $lanes:expr) => {
        impl SimdReal for $name {
            type Scalar = $t;
            const LANES: usize = $lanes;

            #[inline(always)]
            fn zero() -> Self {
                Self([0.0; $lanes])
            }

            #[inline(always)]
            fn splat(x: $t) -> Self {
                Self([x; $lanes])
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the copy stays within that span.
            unsafe fn load(ptr: *const $t) -> Self {
                let mut out = [0.0; $lanes];
                core::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), $lanes);
                Self(out)
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the copy stays within that span.
            unsafe fn store(self, ptr: *mut $t) {
                core::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, $lanes);
            }

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] += rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] -= rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] *= rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] /= rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn neg(self) -> Self {
                let mut out = self.0;
                for x in out.iter_mut() {
                    *x = -*x;
                }
                Self(out)
            }

            #[inline(always)]
            fn fma(self, a: Self, b: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] = Real::mul_add(out[i], a.0[i], b.0[i]);
                }
                Self(out)
            }

            #[inline(always)]
            fn fms(self, a: Self, b: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] = Real::mul_sub(out[i], a.0[i], b.0[i]);
                }
                Self(out)
            }

            #[inline(always)]
            fn to_array(self) -> [$t; 4] {
                let mut out = [0.0; 4];
                out[..$lanes].copy_from_slice(&self.0);
                out
            }
        }
    };
}

impl_scalar_vec!(F32x4, f32, 4);
impl_scalar_vec!(F64x2, f64, 2);
