//! Portable scalar backend: lane arrays with no SIMD instructions.
//!
//! Two jobs. On architectures without a SIMD backend these types *are* the
//! 128-bit vector types (aliased as `F32x4`/`F64x2` by `backend::mod`). On
//! every architecture they are also the always-available `VecWidth::Scalar`
//! backend and the reference implementation the hardware backends and the
//! cross-width agreement tests are checked against. Lane counts mirror the
//! 128-bit layout (4×f32 / 2×f64) so compact batches are laid out
//! identically between the scalar and 128-bit widths.
//!
//! `fma`/`fms` go through [`Real::mul_add`]/[`Real::mul_sub`], which lower
//! to fused `mul_add`, matching NEON `FMLA` rounding (one rounding per
//! lane, not two).

use crate::real::Real;
use crate::vector::SimdReal;

/// Scalar reference vector: four `f32` lanes (`P = 4`).
#[derive(Copy, Clone, Debug)]
pub struct S32x4(pub(crate) [f32; 4]);

/// Scalar reference vector: two `f64` lanes (`P = 2`).
#[derive(Copy, Clone, Debug)]
pub struct S64x2(pub(crate) [f64; 2]);

macro_rules! impl_scalar_vec {
    ($name:ident, $t:ty, $lanes:expr) => {
        impl SimdReal for $name {
            type Scalar = $t;
            type Lanes = [$t; $lanes];
            const LANES: usize = $lanes;

            #[inline(always)]
            fn zero() -> Self {
                Self([0.0; $lanes])
            }

            #[inline(always)]
            fn splat(x: $t) -> Self {
                Self([x; $lanes])
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the copy stays within that span.
            unsafe fn load(ptr: *const $t) -> Self {
                let mut out = [0.0; $lanes];
                core::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), $lanes);
                Self(out)
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the copy stays within that span.
            unsafe fn store(self, ptr: *mut $t) {
                core::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, $lanes);
            }

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] += rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] -= rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] *= rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] /= rhs.0[i];
                }
                Self(out)
            }

            #[inline(always)]
            fn neg(self) -> Self {
                let mut out = self.0;
                for x in out.iter_mut() {
                    *x = -*x;
                }
                Self(out)
            }

            #[inline(always)]
            fn fma(self, a: Self, b: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] = Real::mul_add(out[i], a.0[i], b.0[i]);
                }
                Self(out)
            }

            #[inline(always)]
            fn fms(self, a: Self, b: Self) -> Self {
                let mut out = self.0;
                for i in 0..$lanes {
                    out[i] = Real::mul_sub(out[i], a.0[i], b.0[i]);
                }
                Self(out)
            }

            #[inline(always)]
            fn to_array(self) -> [$t; $lanes] {
                self.0
            }
        }
    };
}

impl_scalar_vec!(S32x4, f32, 4);
impl_scalar_vec!(S64x2, f64, 2);
