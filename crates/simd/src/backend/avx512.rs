//! x86_64 512-bit backend: AVX-512F vectors (`VecWidth::W512`).
//!
//! Quadruples the paper's interleaving factor to `P = 16` (f32) / `P = 8`
//! (f64). Only the AVX-512 *Foundation* subset is used, so the backend runs
//! on every AVX-512 part: sign-bit negation goes through the integer domain
//! (`_mm512_xor_si512` plus casts) because the float `xor` forms belong to
//! the DQ extension.
//!
//! # Module safety contract
//! The workspace builds for baseline x86_64 (SSE2 only), so AVX-512F is
//! *not* statically enabled and every function here is `unsafe` to call:
//! the caller must guarantee the host supports AVX-512F. That guarantee is
//! provided by runtime dispatch — these types are only reachable through
//! kernel tables selected after
//! [`crate::width::width_available`]`(VecWidth::W512)` confirms the probe
//! (`is_x86_feature_detected!("avx512f")`), and through tests that perform
//! the same check. FMA is part of AVX-512F itself, so `fma`/`fms` are
//! always fused (single rounding per lane).

use crate::vector::SimdReal;
use core::arch::x86_64::*;

/// Sixteen `f32` lanes in one 512-bit ZMM register (`P = 16`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x16(__m512);

/// Eight `f64` lanes in one 512-bit ZMM register (`P = 8`).
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x8(__m512d);

impl core::fmt::Debug for F32x16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F32x16({:?})", self.to_array())
    }
}

impl core::fmt::Debug for F64x8 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F64x8({:?})", self.to_array())
    }
}

// Safety: __m512/__m512d are plain 512-bit values.
unsafe impl Send for F32x16 {}
unsafe impl Sync for F32x16 {}
unsafe impl Send for F64x8 {}
unsafe impl Sync for F64x8 {}

macro_rules! impl_avx512_vec {
    (
        $name:ident, $t:ty, $lanes:expr,
        $setzero:ident, $set1:ident, $loadu:ident, $storeu:ident,
        $add:ident, $sub:ident, $mul:ident, $div:ident,
        $fmadd:ident, $fnmadd:ident, $castto:ident, $castfrom:ident
    ) => {
        impl SimdReal for $name {
            type Scalar = $t;
            type Lanes = [$t; $lanes];
            const LANES: usize = $lanes;

            #[inline(always)]
            fn zero() -> Self {
                // SAFETY: value-only AVX-512F intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe { $setzero() })
            }

            #[inline(always)]
            fn splat(x: $t) -> Self {
                // SAFETY: value-only AVX-512F intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe { $set1(x) })
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
            unsafe fn load(ptr: *const $t) -> Self {
                Self($loadu(ptr))
            }

            #[inline(always)]
            // SAFETY: unsafe fn — the pointer-validity contract is inherited from `SimdReal` (`ptr` valid for `LANES` contiguous elements); the unaligned intrinsic adds no further requirements.
            unsafe fn store(self, ptr: *mut $t) {
                $storeu(ptr, self.0);
            }

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX-512F intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe { $add(self.0, rhs.0) })
            }

            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX-512F intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe { $sub(self.0, rhs.0) })
            }

            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX-512F intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe { $mul(self.0, rhs.0) })
            }

            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                // SAFETY: value-only AVX-512F intrinsic on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe { $div(self.0, rhs.0) })
            }

            #[inline(always)]
            fn neg(self) -> Self {
                // sign-bit flip via the integer domain: the float xor forms
                // (_mm512_xor_ps/pd) require AVX-512DQ, while the casts are
                // free bit reinterpretations and xor_si512 is plain F.
                // SAFETY: value-only AVX-512F intrinsics on register operands; no memory is touched. Reaching this code at all implies the module contract (runtime-verified AVX-512F) holds.
                Self(unsafe {
                    $castfrom(_mm512_xor_si512($castto(self.0), $castto($set1(-0.0))))
                })
            }

            #[inline(always)]
            fn fma(self, a: Self, b: Self) -> Self {
                // SAFETY: value-only AVX-512F FMA intrinsic on register operands; fused multiply-add is part of the F subset this module's contract runtime-verifies.
                Self(unsafe { $fmadd(a.0, b.0, self.0) })
            }

            #[inline(always)]
            fn fms(self, a: Self, b: Self) -> Self {
                // SAFETY: value-only AVX-512F FMA intrinsic on register operands; fused multiply-add is part of the F subset this module's contract runtime-verifies.
                Self(unsafe { $fnmadd(a.0, b.0, self.0) })
            }

            #[inline(always)]
            fn to_array(self) -> [$t; $lanes] {
                let mut out = [0.0; $lanes];
                // SAFETY: `out` is a local array with exactly `LANES` elements, so the unaligned store stays in bounds.
                unsafe { $storeu(out.as_mut_ptr(), self.0) };
                out
            }
        }
    };
}

impl_avx512_vec!(
    F32x16, f32, 16,
    _mm512_setzero_ps, _mm512_set1_ps, _mm512_loadu_ps, _mm512_storeu_ps,
    _mm512_add_ps, _mm512_sub_ps, _mm512_mul_ps, _mm512_div_ps,
    _mm512_fmadd_ps, _mm512_fnmadd_ps, _mm512_castps_si512, _mm512_castsi512_ps
);

impl_avx512_vec!(
    F64x8, f64, 8,
    _mm512_setzero_pd, _mm512_set1_pd, _mm512_loadu_pd, _mm512_storeu_pd,
    _mm512_add_pd, _mm512_sub_pd, _mm512_mul_pd, _mm512_div_pd,
    _mm512_fmadd_pd, _mm512_fnmadd_pd, _mm512_castpd_si512, _mm512_castsi512_pd
);
