//! Real scalar abstraction shared by kernels, packing, and reference code.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar (`f32` or `f64`).
///
/// This is the lane type of the SIMD vectors and the component type of
/// [`crate::Complex`]. Only the operations the kernels and reference
/// implementations need are exposed.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// Size of the scalar in bytes.
    const BYTES: usize;

    /// Fused (or contracted) multiply-add: `self + a * b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `self - a * b` (the FMLS pattern used by TRSM kernels).
    fn mul_sub(self, a: Self, b: Self) -> Self;
    /// Reciprocal `1 / self` (used when packing TRSM diagonals).
    fn recip(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Largest of two values.
    fn max(self, other: Self) -> Self;
    /// Lossless widening to `f64` for error analysis.
    fn to_f64(self) -> f64;
    /// Lossy conversion from `f64` (for test data generation).
    fn from_f64(x: f64) -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = core::mem::size_of::<$t>();

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // `mul_add` maps to a hardware FMA when the target has one
                // (always true on aarch64; on x86_64 it requires the `fma`
                // target feature, which the workspace enables via
                // `target-cpu=native`). The scalar reference implementations
                // use the same contraction so kernel/oracle results agree
                // bit-for-bit on the same input ordering.
                a.mul_add(b, self)
            }

            #[inline(always)]
            fn mul_sub(self, a: Self, b: Self) -> Self {
                a.mul_add(-b, self)
            }

            #[inline(always)]
            fn recip(self) -> Self {
                1.0 / self
            }

            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }

            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }

            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_real_ops<T: Real>() {
        let two = T::ONE + T::ONE;
        let three = two + T::ONE;
        assert_eq!(T::ZERO.mul_add(two, three), two * three);
        assert_eq!(T::ONE.mul_add(two, three), T::ONE + two * three);
        assert_eq!(T::ONE.mul_sub(two, three), T::ONE - two * three);
        assert_eq!(two.recip(), T::ONE / two);
        assert_eq!((-three).abs(), three);
        assert!(two.max(three) == three);
        assert!(two.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
    }

    #[test]
    fn f32_ops() {
        check_real_ops::<f32>();
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn f64_ops() {
        check_real_ops::<f64>();
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn widening_round_trip() {
        let x: f32 = 1.25;
        assert_eq!(f32::from_f64(x.to_f64()), x);
        let y: f64 = -3.5;
        assert_eq!(f64::from_f64(y.to_f64()), y);
    }
}
