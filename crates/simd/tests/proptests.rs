//! Property-based SIMD semantics: every vector op must match scalar
//! arithmetic lane by lane on random values, including signed zeros and
//! extreme magnitudes.

use iatf_simd::{CVec, Complex, F32x4, F64x2, Real, SimdReal};
use proptest::prelude::*;

/// `fma`/`fms` on the 128-bit backend are fused where the target enables
/// FMA statically and mul+add otherwise (see `backend::x86`); both are
/// correct, so the checks accept either rounding.
fn fused_or_unfused_f64(got: f64, x: f64, y: f64, z: f64, what: &str) {
    let fused = x.mul_add(y, z);
    let unfused = x * y + z;
    assert!(
        got == fused || got == unfused,
        "{what}: got {got}, expected fused {fused} or unfused {unfused}"
    );
}

fn check_lanes_f64(xs: [f64; 2], ys: [f64; 2], zs: [f64; 2]) {
    let vx = F64x2::from_slice(&xs);
    let vy = F64x2::from_slice(&ys);
    let vz = F64x2::from_slice(&zs);
    for l in 0..2 {
        assert_eq!(vx.add(vy).to_array()[l], xs[l] + ys[l]);
        assert_eq!(vx.sub(vy).to_array()[l], xs[l] - ys[l]);
        assert_eq!(vx.mul(vy).to_array()[l], xs[l] * ys[l]);
        if ys[l] != 0.0 {
            assert_eq!(vx.div(vy).to_array()[l], xs[l] / ys[l]);
        }
        assert_eq!(vx.neg().to_array()[l], -xs[l]);
        fused_or_unfused_f64(
            vz.fma(vx, vy).to_array()[l],
            xs[l],
            ys[l],
            zs[l],
            "fma",
        );
        fused_or_unfused_f64(
            vz.fms(vx, vy).to_array()[l],
            -xs[l],
            ys[l],
            zs[l],
            "fms",
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn f64x2_matches_scalar(
        x0 in -1e6f64..1e6, x1 in -1e6f64..1e6,
        y0 in -1e6f64..1e6, y1 in -1e6f64..1e6,
        z0 in -1e6f64..1e6, z1 in -1e6f64..1e6,
    ) {
        check_lanes_f64([x0, x1], [y0, y1], [z0, z1]);
    }

    #[test]
    fn f32x4_matches_scalar(
        xs in prop::array::uniform4(-1e5f32..1e5),
        ys in prop::array::uniform4(-1e5f32..1e5),
        zs in prop::array::uniform4(-1e5f32..1e5),
    ) {
        let vx = F32x4::from_slice(&xs);
        let vy = F32x4::from_slice(&ys);
        let vz = F32x4::from_slice(&zs);
        for l in 0..4 {
            prop_assert_eq!(vx.add(vy).to_array()[l], xs[l] + ys[l]);
            prop_assert_eq!(vx.mul(vy).to_array()[l], xs[l] * ys[l]);
            let got = vz.fma(vx, vy).to_array()[l];
            let fused = xs[l].mul_add(ys[l], zs[l]);
            let unfused = xs[l] * ys[l] + zs[l];
            prop_assert!(
                got == fused || got == unfused,
                "fma lane {}: got {}, expected fused {} or unfused {}",
                l, got, fused, unfused
            );
        }
    }

    #[test]
    fn extreme_magnitudes_do_not_corrupt_neighbors(
        big in 1e300f64..1e308,
        small in 1e-308f64..1e-300,
    ) {
        // one lane overflows to inf, the other must stay exact
        let v = F64x2::from_slice(&[big, small]);
        let sq = v.mul(v).to_array();
        prop_assert!(sq[0].is_infinite() || sq[0] > 1e300);
        prop_assert_eq!(sq[1], small * small);
    }

    #[test]
    fn cvec_complex_product_matches_complex_type(
        ar in -100.0f64..100.0, ai in -100.0f64..100.0,
        br in -100.0f64..100.0, bi in -100.0f64..100.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let want = a * b;
        let va = CVec::<F64x2>::splat(ar, ai);
        let vb = CVec::<F64x2>::splat(br, bi);
        let got = CVec::<F64x2>::zero().fma(va, vb);
        let tol = 1e-12 * (want.re.abs() + want.im.abs()).max(1.0);
        prop_assert!((got.re.to_array()[0] - want.re).abs() <= tol);
        prop_assert!((got.im.to_array()[0] - want.im).abs() <= tol);
    }

    #[test]
    fn splat_fills_all_lanes(x in -1e9f64..1e9) {
        let v = F64x2::splat(x);
        prop_assert_eq!(&v.to_array()[..2], &[x, x][..]);
        let w = F32x4::splat(x as f32);
        for l in 0..4 {
            prop_assert_eq!(w.to_array()[l], x as f32);
        }
    }

    #[test]
    fn real_trait_ops_are_consistent(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        prop_assert_eq!(Real::mul_add(a, b, c), b.mul_add(c, a));
        prop_assert_eq!(Real::mul_sub(a, b, c), b.mul_add(-c, a));
        if a != 0.0 {
            prop_assert_eq!(Real::recip(a), 1.0 / a);
        }
    }
}

#[test]
fn signed_zero_semantics() {
    let v = F64x2::from_slice(&[0.0, -0.0]);
    let n = v.neg().to_array();
    assert!(n[0].is_sign_negative());
    assert!(n[1].is_sign_positive());
}

#[test]
fn infinity_arithmetic() {
    let inf = F64x2::splat(f64::INFINITY);
    let one = F64x2::splat(1.0);
    assert!(inf.add(one).to_array()[0].is_infinite());
    assert!(inf.sub(inf).to_array()[0].is_nan());
    assert!(one.div(inf).to_array()[0] == 0.0);
}
