//! `IATF_FORCE_WIDTH=512` must be honored where AVX-512F exists and fall
//! back (with a recorded reason) everywhere else — so this one test
//! exercises the rejection path on narrow hosts and the acceptance path
//! on wide ones. Own binary: dispatch is decided once per process.

use iatf_simd::{
    available_widths, dispatched_width, forced_width_fallback, width_available, VecWidth,
};

#[test]
fn unavailable_width_falls_back_available_width_sticks() {
    std::env::set_var("IATF_FORCE_WIDTH", "512");
    if width_available(VecWidth::W512) {
        assert_eq!(dispatched_width(), VecWidth::W512);
        assert!(forced_width_fallback().is_none());
    } else {
        let widest = *available_widths().last().unwrap();
        assert_eq!(dispatched_width(), widest);
        let fb = forced_width_fallback().expect("rejection must be recorded");
        assert_eq!(fb.requested, "512");
        assert_eq!(fb.fallback, widest);
        assert!(fb.reason.contains("not available"), "{}", fb.reason);
    }
}
