//! A malformed `IATF_FORCE_WIDTH` value must fall back to the detected
//! default and record the rejection (same env hygiene as the
//! `IATF_WATCH_*` variables: unset is silent, set-but-invalid warns once
//! and degrades). Own binary so the once-per-process dispatch sees the
//! variable.

use iatf_simd::{available_widths, dispatched_width, forced_width_fallback};

#[test]
fn malformed_force_width_falls_back_with_record() {
    std::env::set_var("IATF_FORCE_WIDTH", "1024");
    let widest = *available_widths().last().unwrap();
    assert_eq!(dispatched_width(), widest);
    let fb = forced_width_fallback().expect("rejection must be recorded");
    assert_eq!(fb.requested, "1024");
    assert_eq!(fb.fallback, widest);
    assert!(fb.reason.contains("scalar/128/256/512"), "{}", fb.reason);
}
