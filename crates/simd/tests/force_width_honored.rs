//! `IATF_FORCE_WIDTH` with an always-available width must be honored
//! silently. Own integration-test binary: the dispatch decision is made
//! once per process, so the env var has to be set before first use.

use iatf_simd::{dispatched_width, forced_width_fallback, VecWidth};

#[test]
fn forcing_an_available_width_is_honored() {
    // Set before the first dispatched_width() call in this process.
    std::env::set_var("IATF_FORCE_WIDTH", "128");
    assert_eq!(dispatched_width(), VecWidth::W128);
    assert!(forced_width_fallback().is_none());
}
