//! Minimal JSON reader for the tuning db.
//!
//! The workspace bans external dependencies and `iatf-obs` only *writes*
//! JSON, so the db loader carries its own small recursive-descent parser.
//! It accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) and rejects everything else with an error the
//! db layer maps to "corrupt file → empty db". Numbers are held as `f64`,
//! which is exact for every integer the db stores (counts and generations
//! are re-checked for integrality on read).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral numeric value.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v <= (1u64 << 53) as f64 && v.fract() == 0.0 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a document failed to parse (detail is diagnostic only; callers
/// treat every variant as "corrupt").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Short description.
    pub msg: &'static str,
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected byte"))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates map
                            // to U+FFFD rather than failing the document.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&lo) {
                                        let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                        char::from_u32(c).unwrap_or('\u{fffd}')
                                    } else {
                                        '\u{fffd}'
                                    }
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                // Raw control characters are invalid JSON; everything else
                // passes through (input is already valid UTF-8).
                0x00..=0x1f => return Err(self.err("control char in string")),
                _ => {
                    // Re-borrow the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("bad \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad number"))?;
        let v: f64 = s.parse().map_err(|_| self.err("bad number"))?;
        if v.is_finite() {
            Ok(JsonValue::Num(v))
        } else {
            Err(self.err("non-finite number"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_representative_db_document() {
        let doc = parse(
            r#"{
              "schema": 1,
              "generation": 42,
              "entries": [
                {"key": "0:0:8:8:8:0:0:2048", "pack": 0, "group_packs": 16,
                 "l1_fraction": 0.5, "parallel": false,
                 "tuned_gflops": 3.25, "heuristic_gflops": 3.0, "noise": 0.02}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("generation").and_then(JsonValue::as_u64), Some(42));
        let entries = doc.get("entries").and_then(JsonValue::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("key").and_then(JsonValue::as_str), Some("0:0:8:8:8:0:0:2048"));
        assert_eq!(e.get("parallel").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(e.get("l1_fraction").and_then(JsonValue::as_f64), Some(0.5));
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let doc = parse(r#"{"s": "a\"b\\c\nA😀", "a": [1, -2.5, 1e3, true, null]}"#).unwrap();
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("a\"b\\c\nA😀"));
        let a = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1} extra",
            "nul",
            "\"unterminated",
            "{\"a\": 1e999}", // overflows to inf
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_is_strict_about_integrality() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("true").unwrap().as_u64(), None);
    }
}
