//! The calibrated micro-benchmark sweep.
//!
//! The caller hands over one closure per candidate configuration (the
//! first is, by convention, the heuristic baseline) and a wall-clock
//! budget. The harness calibrates an iteration count off the baseline,
//! then times every candidate in *interleaved rounds* — candidate order
//! repeats each round, so slow drift (frequency scaling, background
//! load) hits all candidates roughly equally instead of biasing whoever
//! ran last. Per candidate the best round wins (min-of-rounds discards
//! one-sided noise: an interrupt can only make a run slower), and the
//! spread across rounds yields a relative noise estimate the caller can
//! use for "within noise" comparisons.

use std::time::{Duration, Instant};

/// Number of interleaved timing rounds per sweep.
pub const ROUNDS: usize = 3;

/// Outcome of one sweep over a candidate set.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Index of the fastest candidate (min of per-candidate best times).
    pub winner: usize,
    /// Best (minimum over rounds) seconds per invocation, per candidate.
    pub secs: Vec<f64>,
    /// Relative measurement noise: mean over candidates of
    /// `(worst − best) / worst` across rounds. 0 when only one round ran.
    pub noise: f64,
    /// Calibrated invocations per timing slot (provenance: rep counts the
    /// measurement actually ran, published with sweep winners).
    pub iters: usize,
    /// Interleaved rounds run ([`ROUNDS`]; carried so consumers need not
    /// reach back for the constant).
    pub rounds: usize,
}

impl SweepReport {
    /// Whether candidate `i` was strictly faster than candidate `j`
    /// beyond the observed noise floor.
    pub fn strictly_faster(&self, i: usize, j: usize) -> bool {
        self.secs[i] < self.secs[j] * (1.0 - self.noise)
    }
}

/// Runs every candidate closure in interleaved rounds within roughly
/// `budget` of wall clock and reports per-candidate best times.
///
/// Candidate 0 is used for calibration (time one warmup invocation, then
/// size the per-slot iteration count so all `candidates × ROUNDS` slots
/// fit the budget). Every candidate gets at least one invocation per
/// round regardless of budget, so even a tiny budget yields a ranking —
/// just a noisier one.
///
/// # Panics
/// Panics if `runners` is empty.
pub fn sweep(budget: Duration, runners: &mut [Box<dyn FnMut() + '_>]) -> SweepReport {
    assert!(!runners.is_empty(), "sweep needs at least one candidate");
    let n = runners.len();

    // Warmup pass doubles as calibration: how long does one baseline
    // invocation take, cold paths already exercised?
    let mut single = f64::MAX;
    for (i, r) in runners.iter_mut().enumerate() {
        let t0 = Instant::now();
        r();
        let dt = t0.elapsed().as_secs_f64();
        if i == 0 {
            single = dt;
        }
    }
    let slot = budget.as_secs_f64() / (n * ROUNDS) as f64;
    let iters = (slot / single.max(1e-9)).floor().clamp(1.0, 1e6) as usize;

    let mut best = vec![f64::MAX; n];
    let mut worst = vec![0.0f64; n];
    for _ in 0..ROUNDS {
        for (i, r) in runners.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..iters {
                r();
            }
            let per = t0.elapsed().as_secs_f64() / iters as f64;
            best[i] = best[i].min(per);
            worst[i] = worst[i].max(per);
        }
    }

    let noise = best
        .iter()
        .zip(&worst)
        .map(|(&b, &w)| if w > 0.0 { (w - b) / w } else { 0.0 })
        .sum::<f64>()
        / n as f64;
    let winner = best
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    SweepReport {
        winner,
        secs: best,
        noise,
        iters,
        rounds: ROUNDS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    fn spin(units: usize) {
        let mut acc = 0u64;
        for i in 0..units * 2_000 {
            acc = acc.wrapping_add(black_box(i as u64).wrapping_mul(0x9e37_79b9));
        }
        black_box(acc);
    }

    #[test]
    fn sweep_ranks_a_clearly_faster_candidate_first() {
        let mut runners: Vec<Box<dyn FnMut()>> = vec![
            Box::new(|| spin(40)), // "heuristic" baseline: 40x the work
            Box::new(|| spin(40)),
            Box::new(|| spin(1)), // the obvious winner
        ];
        let report = sweep(Duration::from_millis(30), &mut runners);
        assert_eq!(report.winner, 2);
        assert_eq!(report.secs.len(), 3);
        assert!(report.secs.iter().all(|&s| s.is_finite() && s > 0.0));
        assert!(report.noise >= 0.0 && report.noise < 1.0);
        assert!(report.strictly_faster(2, 0));
    }

    #[test]
    fn sweep_survives_a_tiny_budget() {
        let mut runners: Vec<Box<dyn FnMut()>> =
            vec![Box::new(|| spin(2)), Box::new(|| spin(2))];
        let report = sweep(Duration::from_micros(1), &mut runners);
        assert!(report.winner < 2);
        assert!(report.secs.iter().all(|&s| s > 0.0));
    }
}
