//! The persistent tuning database.
//!
//! A process-wide map from [`TuneKey`] to the measured winner
//! ([`TunedEntry`]), plus a monotonically increasing *generation* counter.
//! Planners fold the generation into their config fingerprints, so
//! recording a new winner changes every subsequent plan-cache key and
//! stale cached plans die by eviction — no explicit invalidation walk.
//!
//! Persistence rules:
//!
//! * Location: `$IATF_TUNE_DB` if set (set it to the empty string to
//!   disable persistence entirely), else `$HOME/.cache/iatf/tune.json`,
//!   else in-memory only.
//! * Writes are atomic: serialize to a `.tmp.<pid>` sibling, then
//!   `rename(2)` over the target. Readers never observe a half-written
//!   file, and a crash mid-write leaves the previous db intact.
//! * The format is versioned ([`SCHEMA_VERSION`]). A missing file starts
//!   empty; an unreadable, unparseable, wrong-schema, or otherwise
//!   corrupt file *also* starts empty — the heuristics keep working, an
//!   obs counter ([`iatf_obs::TuneEvent::DbCorrupt`]) records the event,
//!   and nothing panics. Individually malformed entries inside a valid
//!   document are skipped, not fatal.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

use iatf_obs::{count_tune, parse_json, Json, TuneEvent};

use crate::key::TuneKey;

/// On-disk format version; bump on any incompatible layout change. Files
/// carrying a different version are treated as absent (heuristics apply).
pub const SCHEMA_VERSION: u64 = 1;

/// The measured winner recorded for one input fingerprint.
///
/// Fields mirror the run-time stage's decision points; the measured
/// GFLOPS of the winner and of the heuristic baseline ride along so
/// exports (BENCH_4) and staleness audits can see *why* an entry exists.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TunedEntry {
    /// Pack Selecter override: 0 = Auto, 1 = Always, 2 = Never.
    pub pack: u8,
    /// Batch Counter override: packs per super-block; 0 keeps the
    /// heuristic L1-model output.
    pub group_packs: u64,
    /// Effective L1 budget fraction the winner was measured with
    /// (informational — `group_packs` already captures its effect).
    pub l1_fraction: f64,
    /// Whether parallel execution beat serial at this input (the
    /// serial→parallel crossover decision for auto dispatch).
    pub parallel: bool,
    /// Winner's measured GFLOPS during the sweep.
    pub tuned_gflops: f64,
    /// Heuristic baseline's measured GFLOPS during the same sweep.
    pub heuristic_gflops: f64,
    /// Relative measurement noise observed across sweep rounds.
    pub noise: f64,
    /// Where/when the entry was measured (see [`Provenance`]).
    pub provenance: Provenance,
}

/// Where, when, and from which measurement an entry came.
///
/// Zero values mean "unknown": entries written before provenance existed
/// decode with `Provenance::default()`, and a build without the journal
/// feature records `journal_event: 0`. The fields make a pooled or
/// copied tuning db auditable — every entry says which host fingerprint
/// measured it and which journal event holds the full sweep record.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Journal id of the `sweep_winner` event that produced this entry.
    pub journal_event: u64,
    /// Measurement-host fingerprint (`iatf_journal::host_fingerprint` of
    /// the dispatched µarch row and vector width).
    pub host: u64,
    /// Unix seconds when the winner was recorded.
    pub recorded_at: u64,
}

impl TunedEntry {
    fn valid(&self) -> bool {
        self.pack <= 2
            && self.l1_fraction.is_finite()
            && self.l1_fraction > 0.0
            && self.l1_fraction <= 4.0
            && self.tuned_gflops.is_finite()
            && self.tuned_gflops >= 0.0
            && self.heuristic_gflops.is_finite()
            && self.heuristic_gflops >= 0.0
            && self.noise.is_finite()
            && self.noise >= 0.0
    }
}

/// Result of loading a db file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// File read and accepted; this many entries survived validation.
    Loaded(usize),
    /// No file at the path; db starts empty.
    Missing,
    /// File present but unreadable/unparseable/wrong schema; db starts
    /// empty and the `DbCorrupt` obs counter was incremented.
    Corrupt,
}

struct Inner {
    entries: HashMap<TuneKey, TunedEntry>,
    path: Option<PathBuf>,
}

/// Process-wide tuning database.
pub struct TuningDb {
    inner: Mutex<Inner>,
    generation: AtomicU64,
}

impl TuningDb {
    /// Fresh empty db with persistence disabled (tests, embedders).
    pub fn in_memory() -> Self {
        TuningDb {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                path: None,
            }),
            generation: AtomicU64::new(1),
        }
    }

    /// The process-wide instance. First use resolves the persistence path
    /// (`$IATF_TUNE_DB`, else `$HOME/.cache/iatf/tune.json`) and loads
    /// whatever is there; corruption degrades to an empty db.
    pub fn global() -> &'static TuningDb {
        static GLOBAL: OnceLock<TuningDb> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let db = TuningDb::in_memory();
            if let Some(path) = default_path() {
                db.load_from(&path);
                db.set_path(Some(path));
            }
            db
        })
    }

    /// Looks up the recorded winner for a fingerprint.
    pub fn lookup(&self, key: &TuneKey) -> Option<TunedEntry> {
        self.inner.lock().unwrap().entries.get(key).copied()
    }

    /// Records a winner, bumps the generation (invalidating cached plans
    /// built against tuned state), and persists eagerly if a path is
    /// configured. Persistence failures are deliberately silent — the
    /// in-process db stays authoritative.
    pub fn record(&self, key: TuneKey, entry: TunedEntry) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.insert(key, entry);
        // ordering: Relaxed — generation is a pure invalidation counter mixed into plan fingerprints; the entries it guards are published by the mutex, not by this atomic.
        self.generation.fetch_add(1, Relaxed);
        if let Some(path) = inner.path.clone() {
            let doc = render(&inner.entries, self.generation.load(Relaxed));
            drop(inner);
            if write_atomic(&path, &doc).is_ok() {
                count_tune(TuneEvent::Persist);
            }
        }
        if iatf_journal::is_enabled() {
            // The record points back at the sweep winner that produced it
            // (or the ambient cause when provenance is unknown).
            iatf_journal::publish(
                iatf_journal::EventKind::DbRecord,
                &key.encode(),
                entry.provenance.journal_event,
                Json::object()
                    .set("generation", self.generation())
                    .set("tuned_gflops", entry.tuned_gflops)
                    .set("noise", entry.noise)
                    .set("host", format!("{:016x}", entry.provenance.host).as_str()),
            );
        }
    }

    /// Evicts the entry for `key` (drift remediation: the next
    /// first-touch dispatch re-sweeps and re-records). Bumps the
    /// generation and persists when an entry was actually removed, so
    /// plans cached against the stale winner are invalidated exactly like
    /// they are when a new winner is recorded. Returns whether an entry
    /// existed.
    pub fn remove(&self, key: &TuneKey) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.entries.remove(key).is_none() {
            return false;
        }
        // ordering: Relaxed — invalidation counter bump; entry state is mutex-guarded.
        self.generation.fetch_add(1, Relaxed);
        if let Some(path) = inner.path.clone() {
            let doc = render(&inner.entries, self.generation.load(Relaxed));
            drop(inner);
            if write_atomic(&path, &doc).is_ok() {
                count_tune(TuneEvent::Persist);
            }
        }
        if iatf_journal::is_enabled() {
            // Cause is ambient: a drift-triggered eviction runs inside the
            // retune's cause scope and links back to the drift event.
            iatf_journal::publish(
                iatf_journal::EventKind::DbEvict,
                &key.encode(),
                0,
                Json::object().set("generation", self.generation()),
            );
        }
        true
    }

    /// Current generation. Monotonically increases on every mutation;
    /// planners mix it into plan-cache fingerprints.
    pub fn generation(&self) -> u64 {
        // ordering: Relaxed — advisory version read; any pairing with entries goes through the mutex.
        self.generation.load(Relaxed)
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (in-memory only; the on-disk file is untouched)
    /// and bumps the generation. Benchmarks use this for hermetic runs.
    pub fn clear(&self) {
        self.inner.lock().unwrap().entries.clear();
        // ordering: Relaxed — invalidation counter bump; entry state is mutex-guarded.
        self.generation.fetch_add(1, Relaxed);
    }

    /// Points persistence somewhere else (or `None` to disable). Does not
    /// reload; combine with [`load_from`](Self::load_from) if needed.
    pub fn set_path(&self, path: Option<PathBuf>) {
        self.inner.lock().unwrap().path = path;
    }

    /// Replaces the in-memory entries with the contents of `path`.
    /// Corruption of any kind empties the db and counts one `DbCorrupt`
    /// event; this function never panics on file contents.
    pub fn load_from(&self, path: &Path) -> LoadOutcome {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.inner.lock().unwrap().entries.clear();
                return LoadOutcome::Missing;
            }
            Err(_) => return self.reject(),
        };
        let Ok(doc) = parse_json(&text) else {
            return self.reject();
        };
        if doc.get("schema").and_then(Json::as_u64) != Some(SCHEMA_VERSION) {
            return self.reject();
        }
        let Some(raw) = doc.get("entries").and_then(Json::as_array) else {
            return self.reject();
        };
        let generation = doc
            .get("generation")
            .and_then(Json::as_u64)
            .unwrap_or(1)
            .max(1);
        let mut entries = HashMap::with_capacity(raw.len());
        for item in raw {
            if let Some((key, entry)) = decode_entry(item) {
                entries.insert(key, entry);
            }
        }
        let n = entries.len();
        self.inner.lock().unwrap().entries = entries;
        // ordering: Relaxed — generation is a version stamp; the entries map itself is published by the mutex held above.
        self.generation.store(generation, Relaxed);
        LoadOutcome::Loaded(n)
    }

    /// All recorded entries, sorted by encoded key (export / reporting).
    pub fn entries(&self) -> Vec<(TuneKey, TunedEntry)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<_> = inner.entries.iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_by_key(|(k, _)| k.encode());
        out
    }

    fn reject(&self) -> LoadOutcome {
        self.inner.lock().unwrap().entries.clear();
        count_tune(TuneEvent::DbCorrupt);
        LoadOutcome::Corrupt
    }
}

fn default_path() -> Option<PathBuf> {
    iatf_obs::env::env_path("IATF_TUNE_DB", &[".cache", "iatf", "tune.json"])
}

fn decode_entry(item: &Json) -> Option<(TuneKey, TunedEntry)> {
    let key = TuneKey::decode(item.get("key")?.as_str()?)?;
    // Provenance is additive and optional: pre-provenance entries decode
    // with every field defaulted to "unknown" rather than being skipped.
    // The host fingerprint travels as a hex string because full-range u64
    // values do not survive f64-based JSON number paths.
    let provenance = Provenance {
        journal_event: item.get("journal_event").and_then(Json::as_u64).unwrap_or(0),
        host: item
            .get("host")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or(0),
        recorded_at: item.get("recorded_at").and_then(Json::as_u64).unwrap_or(0),
    };
    let entry = TunedEntry {
        pack: u8::try_from(item.get("pack")?.as_u64()?).ok()?,
        group_packs: item.get("group_packs")?.as_u64()?,
        l1_fraction: item.get("l1_fraction")?.as_f64()?,
        parallel: item.get("parallel")?.as_bool()?,
        tuned_gflops: item.get("tuned_gflops")?.as_f64()?,
        heuristic_gflops: item.get("heuristic_gflops")?.as_f64()?,
        noise: item.get("noise")?.as_f64()?,
        provenance,
    };
    entry.valid().then_some((key, entry))
}

fn render(entries: &HashMap<TuneKey, TunedEntry>, generation: u64) -> String {
    let mut sorted: Vec<_> = entries.iter().collect();
    sorted.sort_by_key(|(k, _)| k.encode());
    let items: Vec<Json> = sorted
        .into_iter()
        .map(|(k, e)| {
            Json::object()
                .set("key", k.encode().as_str())
                .set("pack", u64::from(e.pack))
                .set("group_packs", e.group_packs)
                .set("l1_fraction", e.l1_fraction)
                .set("parallel", e.parallel)
                .set("tuned_gflops", e.tuned_gflops)
                .set("heuristic_gflops", e.heuristic_gflops)
                .set("noise", e.noise)
                .set("journal_event", e.provenance.journal_event)
                .set("host", format!("{:016x}", e.provenance.host).as_str())
                .set("recorded_at", e.provenance.recorded_at)
        })
        .collect();
    Json::object()
        .set("schema", SCHEMA_VERSION)
        .set("generation", generation)
        .set("entries", items)
        .to_pretty()
}

pub(crate) fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TuneOp;
    use std::sync::atomic::AtomicU32;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "iatf-tune-{tag}-{}-{}.json",
            std::process::id(),
            SEQ.fetch_add(1, Relaxed)
        ))
    }

    fn sample_key(n: u32) -> TuneKey {
        TuneKey {
            op: TuneOp::Gemm,
            dtype: 0,
            m: n,
            n,
            k: n,
            mode: 0,
            conj: 0,
            count: 1024,
            width: 1,
        }
    }

    fn sample_entry() -> TunedEntry {
        TunedEntry {
            pack: 2,
            group_packs: 8,
            l1_fraction: 0.75,
            parallel: false,
            tuned_gflops: 3.5,
            heuristic_gflops: 3.1,
            noise: 0.02,
            // Non-default values so the persistence round-trip tests
            // prove provenance survives the disk format (the host value
            // exercises the full-u64 hex path).
            provenance: Provenance {
                journal_event: 123_456_789,
                host: 0xdead_beef_cafe_f00d,
                recorded_at: 1_754_000_000,
            },
        }
    }

    #[test]
    fn record_lookup_and_generation() {
        let db = TuningDb::in_memory();
        let g0 = db.generation();
        assert!(db.lookup(&sample_key(8)).is_none());
        db.record(sample_key(8), sample_entry());
        assert_eq!(db.lookup(&sample_key(8)), Some(sample_entry()));
        assert!(db.generation() > g0);
        assert_eq!(db.len(), 1);
        let g1 = db.generation();
        db.clear();
        assert!(db.is_empty());
        assert!(db.generation() > g1);
    }

    #[test]
    fn remove_evicts_bumps_generation_and_persists() {
        let path = temp_path("remove");
        let db = TuningDb::in_memory();
        db.set_path(Some(path.clone()));
        db.record(sample_key(4), sample_entry());
        db.record(sample_key(5), sample_entry());
        let g1 = db.generation();
        assert!(db.remove(&sample_key(4)));
        assert!(db.generation() > g1, "remove must invalidate cached plans");
        assert!(db.lookup(&sample_key(4)).is_none());
        // Removing a missing key is a no-op: no generation churn.
        let g2 = db.generation();
        assert!(!db.remove(&sample_key(4)));
        assert_eq!(db.generation(), g2);
        // The eviction reached disk.
        let fresh = TuningDb::in_memory();
        assert_eq!(fresh.load_from(&path), LoadOutcome::Loaded(1));
        assert!(fresh.lookup(&sample_key(4)).is_none());
        assert!(fresh.lookup(&sample_key(5)).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persists_and_reloads_atomically() {
        let path = temp_path("roundtrip");
        let db = TuningDb::in_memory();
        db.set_path(Some(path.clone()));
        db.record(sample_key(4), sample_entry());
        db.record(sample_key(5), TunedEntry { pack: 0, ..sample_entry() });

        // No temp-file droppings next to the target.
        let dir = path.parent().unwrap();
        let strays = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("iatf-tune-roundtrip"))
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(strays, 0);

        let fresh = TuningDb::in_memory();
        assert_eq!(fresh.load_from(&path), LoadOutcome::Loaded(2));
        assert_eq!(fresh.lookup(&sample_key(4)), Some(sample_entry()));
        assert_eq!(fresh.generation(), db.generation());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_starts_empty() {
        let db = TuningDb::in_memory();
        db.record(sample_key(9), sample_entry());
        assert_eq!(db.load_from(&temp_path("missing")), LoadOutcome::Missing);
        assert!(db.is_empty());
    }

    #[test]
    fn garbage_file_degrades_to_empty_with_counter() {
        for garbage in [
            "not json at all",
            "{\"schema\": 1, \"generation\": ",        // truncated
            "{\"schema\": 999, \"entries\": []}",      // wrong schema
            "{\"generation\": 3, \"entries\": []}",    // schema missing
            "{\"schema\": 1, \"entries\": 42}",        // entries not an array
            "[1, 2, 3]",                               // wrong top-level shape
        ] {
            let path = temp_path("garbage");
            std::fs::write(&path, garbage).unwrap();
            let db = TuningDb::in_memory();
            db.record(sample_key(7), sample_entry());
            let before = iatf_obs::tune_count(iatf_obs::TuneEvent::DbCorrupt);
            assert_eq!(db.load_from(&path), LoadOutcome::Corrupt, "accepted {garbage:?}");
            assert!(db.is_empty(), "entries survived {garbage:?}");
            if iatf_obs::is_enabled() {
                assert!(iatf_obs::tune_count(iatf_obs::TuneEvent::DbCorrupt) > before);
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let path = temp_path("partial");
        std::fs::write(
            &path,
            r#"{"schema": 1, "generation": 6, "entries": [
                {"key": "0:0:4:4:4:0:0:1024:1", "pack": 2, "group_packs": 8,
                 "l1_fraction": 0.75, "parallel": false,
                 "tuned_gflops": 3.5, "heuristic_gflops": 3.1, "noise": 0.02},
                {"key": "bogus", "pack": 0},
                {"key": "0:0:5:5:5:0:0:1024:1", "pack": 77, "group_packs": 1,
                 "l1_fraction": 0.5, "parallel": false,
                 "tuned_gflops": 1.0, "heuristic_gflops": 1.0, "noise": 0.0}
            ]}"#,
        )
        .unwrap();
        let db = TuningDb::in_memory();
        assert_eq!(db.load_from(&path), LoadOutcome::Loaded(1));
        assert_eq!(db.generation(), 6);
        assert_eq!(
            db.lookup(&sample_key(4)),
            Some(TunedEntry {
                provenance: Provenance::default(),
                ..sample_entry()
            })
        );
        std::fs::remove_file(&path).ok();
    }

    /// A db written before provenance existed (no journal_event / host /
    /// recorded_at fields) must decode with provenance defaulted, not be
    /// skipped — pooled dbs keep their history across the upgrade.
    #[test]
    fn pre_provenance_entries_decode_with_defaults() {
        let path = temp_path("preprov");
        std::fs::write(
            &path,
            r#"{"schema": 1, "generation": 9, "entries": [
                {"key": "0:0:4:4:4:0:0:1024:1", "pack": 2, "group_packs": 8,
                 "l1_fraction": 0.75, "parallel": false,
                 "tuned_gflops": 3.5, "heuristic_gflops": 3.1, "noise": 0.02},
                {"key": "0:0:5:5:5:0:0:1024:1", "pack": 1, "group_packs": 4,
                 "l1_fraction": 0.5, "parallel": true,
                 "tuned_gflops": 2.0, "heuristic_gflops": 1.5, "noise": 0.01,
                 "host": "not-hex", "journal_event": 17}
            ]}"#,
        )
        .unwrap();
        let db = TuningDb::in_memory();
        assert_eq!(db.load_from(&path), LoadOutcome::Loaded(2));
        let old = db.lookup(&sample_key(4)).unwrap();
        assert_eq!(old.provenance, Provenance::default());
        assert_eq!(old.tuned_gflops, 3.5);
        // Partially-present provenance: decodable fields land, garbage
        // (a non-hex host) defaults instead of poisoning the entry.
        let partial = db.lookup(&sample_key(5)).unwrap();
        assert_eq!(partial.provenance.journal_event, 17);
        assert_eq!(partial.provenance.host, 0);
        // And a re-render emits the provenance fields for both.
        db.set_path(Some(path.clone()));
        db.record(sample_key(6), sample_entry());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("journal_event"));
        assert!(text.contains("deadbeefcafef00d"));
        std::fs::remove_file(&path).ok();
    }
}
