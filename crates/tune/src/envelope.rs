//! Persistent performance envelopes: what "healthy" looks like per input.
//!
//! A [`PerfEnvelope`] records the expected warm-dispatch latency and
//! throughput for one [`TuneKey`], plus the relative noise band the
//! expectation was measured under. The watch layer (`iatf-watch`) compares
//! live dispatch latencies against these envelopes to detect drift; this
//! module only owns the storage, mirroring the [`TuningDb`] persistence
//! rules so the two files live side by side and fail the same way:
//!
//! * Location: `$IATF_WATCH_ENVELOPES` if set (empty string disables
//!   persistence), else `$HOME/.cache/iatf/envelopes.json`, else
//!   in-memory only.
//! * Writes are atomic (temp file + rename), the format is versioned
//!   ([`ENVELOPE_SCHEMA_VERSION`]), and a corrupt file degrades to an
//!   empty db: detection falls back to self-calibrated envelopes, nothing
//!   panics. Individually malformed entries are skipped, not fatal.
//!
//! [`TuningDb`]: crate::TuningDb

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use iatf_obs::{parse_json, Json};

use crate::db::write_atomic;
use crate::key::TuneKey;

/// On-disk envelope format version; files carrying a different version
/// are treated as absent.
pub const ENVELOPE_SCHEMA_VERSION: u64 = 1;

/// Where an envelope's expectation came from (reported in drift events so
/// an operator can judge how much to trust the threshold).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeSource {
    /// Seeded from a `TunedEntry`'s sweep measurement.
    Tuned,
    /// Seeded from the plan explainer's roofline prediction.
    Roofline,
    /// Self-calibrated from live warm dispatches.
    Observed,
}

impl EnvelopeSource {
    /// Stable on-disk / exposition name.
    pub fn name(self) -> &'static str {
        match self {
            EnvelopeSource::Tuned => "tuned",
            EnvelopeSource::Roofline => "roofline",
            EnvelopeSource::Observed => "observed",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "tuned" => Some(EnvelopeSource::Tuned),
            "roofline" => Some(EnvelopeSource::Roofline),
            "observed" => Some(EnvelopeSource::Observed),
            _ => None,
        }
    }
}

/// Expected warm-dispatch performance for one input fingerprint.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PerfEnvelope {
    /// Expected latency of one warm dispatch, nanoseconds.
    pub expected_ns: f64,
    /// Expected throughput at this input, GFLOPS.
    pub expected_gflops: f64,
    /// Relative noise band of the expectation (from sweep rounds or the
    /// calibration window); drift thresholds scale with this.
    pub noise: f64,
    /// Provenance of the expectation.
    pub source: EnvelopeSource,
}

impl PerfEnvelope {
    fn valid(&self) -> bool {
        self.expected_ns.is_finite()
            && self.expected_ns > 0.0
            && self.expected_gflops.is_finite()
            && self.expected_gflops >= 0.0
            && self.noise.is_finite()
            && (0.0..=1.0).contains(&self.noise)
    }
}

struct Inner {
    entries: HashMap<TuneKey, PerfEnvelope>,
    path: Option<PathBuf>,
}

/// Process-wide envelope store, persisted alongside the tuning db.
pub struct EnvelopeDb {
    inner: Mutex<Inner>,
}

/// Result of loading an envelope file (same shape as the tuning db's
/// [`LoadOutcome`](crate::LoadOutcome), kept separate so callers can't
/// confuse the two).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeLoad {
    /// File read and accepted; this many entries survived validation.
    Loaded(usize),
    /// No file at the path; store starts empty.
    Missing,
    /// File present but unusable; store starts empty.
    Corrupt,
}

impl EnvelopeDb {
    /// Fresh empty store with persistence disabled.
    pub fn in_memory() -> Self {
        EnvelopeDb {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                path: None,
            }),
        }
    }

    /// The process-wide instance; first use resolves the persistence path
    /// and loads whatever is there.
    pub fn global() -> &'static EnvelopeDb {
        static GLOBAL: OnceLock<EnvelopeDb> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let db = EnvelopeDb::in_memory();
            if let Some(path) = default_path() {
                db.load_from(&path);
                db.set_path(Some(path));
            }
            db
        })
    }

    /// Looks up the envelope for a fingerprint.
    pub fn lookup(&self, key: &TuneKey) -> Option<PerfEnvelope> {
        self.inner.lock().unwrap().entries.get(key).copied()
    }

    /// Records (or replaces) an envelope and persists eagerly if a path
    /// is configured. Invalid envelopes are dropped rather than stored.
    pub fn record(&self, key: TuneKey, envelope: PerfEnvelope) {
        if !envelope.valid() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.entries.insert(key, envelope);
        if let Some(path) = inner.path.clone() {
            let doc = render(&inner.entries);
            drop(inner);
            let _ = write_atomic(&path, &doc);
        }
    }

    /// Number of recorded envelopes.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether no envelopes are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every envelope (in-memory only).
    pub fn clear(&self) {
        self.inner.lock().unwrap().entries.clear();
    }

    /// Points persistence somewhere else (or `None` to disable).
    pub fn set_path(&self, path: Option<PathBuf>) {
        self.inner.lock().unwrap().path = path;
    }

    /// All recorded envelopes, sorted by encoded key.
    pub fn entries(&self) -> Vec<(TuneKey, PerfEnvelope)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<_> = inner.entries.iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_by_key(|(k, _)| k.encode());
        out
    }

    /// Replaces the in-memory envelopes with the contents of `path`;
    /// corruption of any kind empties the store and never panics.
    pub fn load_from(&self, path: &Path) -> EnvelopeLoad {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.inner.lock().unwrap().entries.clear();
                return EnvelopeLoad::Missing;
            }
            Err(_) => return self.reject(),
        };
        let Ok(doc) = parse_json(&text) else {
            return self.reject();
        };
        if doc.get("schema").and_then(Json::as_u64) != Some(ENVELOPE_SCHEMA_VERSION) {
            return self.reject();
        }
        let Some(raw) = doc.get("envelopes").and_then(Json::as_array) else {
            return self.reject();
        };
        let mut entries = HashMap::with_capacity(raw.len());
        for item in raw {
            if let Some((key, env)) = decode_entry(item) {
                entries.insert(key, env);
            }
        }
        let n = entries.len();
        self.inner.lock().unwrap().entries = entries;
        EnvelopeLoad::Loaded(n)
    }

    fn reject(&self) -> EnvelopeLoad {
        self.inner.lock().unwrap().entries.clear();
        EnvelopeLoad::Corrupt
    }
}

fn default_path() -> Option<PathBuf> {
    iatf_obs::env::env_path("IATF_WATCH_ENVELOPES", &[".cache", "iatf", "envelopes.json"])
}

fn decode_entry(item: &Json) -> Option<(TuneKey, PerfEnvelope)> {
    let key = TuneKey::decode(item.get("key")?.as_str()?)?;
    let env = PerfEnvelope {
        expected_ns: item.get("expected_ns")?.as_f64()?,
        expected_gflops: item.get("expected_gflops")?.as_f64()?,
        noise: item.get("noise")?.as_f64()?,
        source: EnvelopeSource::from_name(item.get("source")?.as_str()?)?,
    };
    env.valid().then_some((key, env))
}

fn render(entries: &HashMap<TuneKey, PerfEnvelope>) -> String {
    let mut sorted: Vec<_> = entries.iter().collect();
    sorted.sort_by_key(|(k, _)| k.encode());
    let items: Vec<Json> = sorted
        .into_iter()
        .map(|(k, e)| {
            Json::object()
                .set("key", k.encode().as_str())
                .set("expected_ns", e.expected_ns)
                .set("expected_gflops", e.expected_gflops)
                .set("noise", e.noise)
                .set("source", e.source.name())
        })
        .collect();
    Json::object()
        .set("schema", ENVELOPE_SCHEMA_VERSION)
        .set("envelopes", items)
        .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TuneOp;
    use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "iatf-envelope-{tag}-{}-{}.json",
            std::process::id(),
            SEQ.fetch_add(1, Relaxed)
        ))
    }

    fn sample_key(n: u32) -> TuneKey {
        TuneKey {
            op: TuneOp::Gemm,
            dtype: 1,
            m: n,
            n,
            k: n,
            mode: 0,
            conj: 0,
            count: 512,
            width: 1,
        }
    }

    fn sample_env() -> PerfEnvelope {
        PerfEnvelope {
            expected_ns: 12_500.0,
            expected_gflops: 3.2,
            noise: 0.05,
            source: EnvelopeSource::Tuned,
        }
    }

    #[test]
    fn record_persist_reload_roundtrip() {
        let path = temp_path("roundtrip");
        let db = EnvelopeDb::in_memory();
        db.set_path(Some(path.clone()));
        db.record(sample_key(8), sample_env());
        db.record(
            sample_key(12),
            PerfEnvelope {
                source: EnvelopeSource::Observed,
                ..sample_env()
            },
        );
        let fresh = EnvelopeDb::in_memory();
        assert_eq!(fresh.load_from(&path), EnvelopeLoad::Loaded(2));
        assert_eq!(fresh.lookup(&sample_key(8)), Some(sample_env()));
        assert_eq!(
            fresh.lookup(&sample_key(12)).map(|e| e.source),
            Some(EnvelopeSource::Observed)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_envelopes_are_not_stored() {
        let db = EnvelopeDb::in_memory();
        for bad in [
            PerfEnvelope {
                expected_ns: 0.0,
                ..sample_env()
            },
            PerfEnvelope {
                expected_ns: f64::NAN,
                ..sample_env()
            },
            PerfEnvelope {
                noise: 1.5,
                ..sample_env()
            },
            PerfEnvelope {
                expected_gflops: f64::INFINITY,
                ..sample_env()
            },
        ] {
            db.record(sample_key(4), bad);
            assert!(db.is_empty(), "stored invalid envelope {bad:?}");
        }
    }

    #[test]
    fn corrupt_or_missing_files_degrade_to_empty() {
        let db = EnvelopeDb::in_memory();
        db.record(sample_key(6), sample_env());
        assert_eq!(db.load_from(&temp_path("missing")), EnvelopeLoad::Missing);
        assert!(db.is_empty());

        for garbage in [
            "not json",
            "{\"schema\": 999, \"envelopes\": []}",
            "{\"schema\": 1, \"envelopes\": 7}",
        ] {
            let path = temp_path("garbage");
            std::fs::write(&path, garbage).unwrap();
            let db = EnvelopeDb::in_memory();
            db.record(sample_key(6), sample_env());
            assert_eq!(db.load_from(&path), EnvelopeLoad::Corrupt, "accepted {garbage:?}");
            assert!(db.is_empty());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let path = temp_path("partial");
        std::fs::write(
            &path,
            r#"{"schema": 1, "envelopes": [
                {"key": "0:1:8:8:8:0:0:512:1", "expected_ns": 12500.0,
                 "expected_gflops": 3.2, "noise": 0.05, "source": "tuned"},
                {"key": "bogus", "expected_ns": 1.0},
                {"key": "0:1:9:9:9:0:0:512:1", "expected_ns": 1.0,
                 "expected_gflops": 1.0, "noise": 0.0, "source": "psychic"}
            ]}"#,
        )
        .unwrap();
        let db = EnvelopeDb::in_memory();
        assert_eq!(db.load_from(&path), EnvelopeLoad::Loaded(1));
        assert_eq!(db.lookup(&sample_key(8)), Some(sample_env()));
        std::fs::remove_file(&path).ok();
    }
}
