//! Input fingerprints: what a tuned entry is keyed by.

/// Routine discriminant inside a [`TuneKey`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TuneOp {
    /// Batched compact GEMM.
    Gemm = 0,
    /// Batched compact TRSM.
    Trsm = 1,
    /// Batched compact TRMM.
    Trmm = 2,
}

impl TuneOp {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(TuneOp::Gemm),
            1 => Some(TuneOp::Trsm),
            2 => Some(TuneOp::Trmm),
            _ => None,
        }
    }
}

/// The input fingerprint a tuned entry is recorded under.
///
/// Everything that changes which execution configuration wins is part of
/// the key: the routine, element type, problem dimensions, the packed
/// mode/conjugation bits (same encodings the plan cache uses), and the
/// batch count. Two calls with the same key face the same candidate
/// space, so one measured winner serves both.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Routine.
    pub op: TuneOp,
    /// Element type discriminant (`DType as u8` in core).
    pub dtype: u8,
    /// Rows of the output (GEMM M; TRSM/TRMM B rows).
    pub m: u32,
    /// Columns of the output.
    pub n: u32,
    /// Inner dimension (GEMM K; 0 for the triangular ops).
    pub k: u32,
    /// Packed transpose/side/uplo/diag bits (op-specific encoding).
    pub mode: u8,
    /// Packed conjugation bits.
    pub conj: u8,
    /// Batch count.
    pub count: u64,
    /// Vector-width code (`iatf_simd::VecWidth::code()`) the measurement
    /// ran at. The interleaving factor changes the candidate space and
    /// every measured time, so a winner recorded at one width must never
    /// be served at another. Entries written before this field existed
    /// fail to decode and are skipped by the db loader — exactly the
    /// "never serve a stale-width record" behaviour wanted.
    pub width: u8,
}

impl TuneKey {
    /// Stable string encoding used as the on-disk identifier:
    /// `op:dtype:m:n:k:mode:conj:count:width`, all numeric.
    pub fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}:{}:{}",
            self.op as u8,
            self.dtype,
            self.m,
            self.n,
            self.k,
            self.mode,
            self.conj,
            self.count,
            self.width
        )
    }

    /// Inverse of [`encode`](Self::encode); `None` on any malformed field
    /// (the db loader skips such entries rather than failing the file).
    pub fn decode(s: &str) -> Option<Self> {
        let mut it = s.split(':');
        let mut next_u64 = || it.next()?.parse::<u64>().ok();
        let op = TuneOp::from_u8(u8::try_from(next_u64()?).ok()?)?;
        let dtype = u8::try_from(next_u64()?).ok()?;
        let m = u32::try_from(next_u64()?).ok()?;
        let n = u32::try_from(next_u64()?).ok()?;
        let k = u32::try_from(next_u64()?).ok()?;
        let mode = u8::try_from(next_u64()?).ok()?;
        let conj = u8::try_from(next_u64()?).ok()?;
        let count = next_u64()?;
        let width = u8::try_from(next_u64()?).ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(TuneKey {
            op,
            dtype,
            m,
            n,
            k,
            mode,
            conj,
            count,
            width,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrips_through_encoding() {
        let key = TuneKey {
            op: TuneOp::Trsm,
            dtype: 3,
            m: 17,
            n: 33,
            k: 0,
            mode: 0b1011,
            conj: 1,
            count: 16384,
            width: 2,
        };
        assert_eq!(TuneKey::decode(&key.encode()), Some(key));
    }

    #[test]
    fn decode_rejects_malformed_strings() {
        for bad in [
            "",
            "0:1:2",                    // too few fields
            "0:1:2:3:4:5:6:7",          // pre-width 8-field key (stale db)
            "0:1:2:3:4:5:6:7:8:9",      // too many fields
            "9:1:2:3:4:5:6:7:8",        // unknown op
            "0:1:2:3:4:5:6:7:x",        // non-numeric
            "0:300:2:3:4:5:6:7:8",      // dtype overflows u8
            "0:1:2:3:4:5:6:-7:8",       // negative
            "gemm:f32:2:3:4:5:6:7:8",   // symbolic form is not accepted
        ] {
            assert_eq!(TuneKey::decode(bad), None, "accepted {bad:?}");
        }
    }
}
