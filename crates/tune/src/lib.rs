//! Input-aware empirical autotuner for the IATF run-time stage.
//!
//! The paper's run-time stage decides how to execute a batched compact
//! BLAS call from static heuristics: the Pack Selecter's structural rule,
//! the Batch Counter's L1 occupancy model with a fixed budget fraction,
//! and whichever entry point (serial or parallel) the caller picked. This
//! crate makes those decisions *measured*: per input fingerprint
//! (op, dtype, dims, count) a short calibrated micro-benchmark sweep runs
//! the candidate configurations against each other and the winner is
//! recorded in a process-wide [`TuningDb`] that persists to disk.
//!
//! Three pieces, deliberately free of any dependency on the planner so the
//! core crate can depend on this one:
//!
//! * [`key`] — [`TuneKey`], the input fingerprint the db is indexed by,
//!   with a stable string encoding for the on-disk format.
//! * [`measure`] — the calibrated sweep harness: interleaved rounds,
//!   min-of-rounds timing, and a noise estimate, over opaque candidate
//!   closures supplied by the caller.
//! * [`db`] — [`TuningDb`]: a mutex-guarded map plus a monotonically
//!   increasing *generation* that planners fold into their plan-cache
//!   fingerprints, so recording a new winner invalidates stale cached
//!   plans. Persistence is versioned, atomic (temp file + rename), and
//!   corruption-tolerant: a truncated or garbage file degrades to an
//!   empty db — heuristics keep working, nothing panics.
//! * [`envelope`] — [`EnvelopeDb`]: persisted performance envelopes
//!   (expected warm-dispatch latency and throughput per fingerprint) that
//!   the watch layer compares live traffic against; same persistence
//!   rules as the tuning db, stored alongside it.
//!
//! The BLAS-specific candidate construction (which plans to build, what
//! synthetic operands to run them on) lives in `iatf-core`'s `autotune`
//! module; this crate only measures closures and stores winners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod envelope;
pub mod key;
pub mod measure;

pub use db::{LoadOutcome, Provenance, TunedEntry, TuningDb, SCHEMA_VERSION};
pub use envelope::{
    EnvelopeDb, EnvelopeLoad, EnvelopeSource, PerfEnvelope, ENVELOPE_SCHEMA_VERSION,
};
pub use key::{TuneKey, TuneOp};
pub use measure::{sweep, SweepReport};
