//! Scalar reference computations over the kernels' packed-panel formats.
//!
//! These oracles re-derive every kernel's expected output lane by lane with
//! plain scalar arithmetic. They are deliberately slow and obvious; kernel
//! unit tests (and `iatf-codegen`'s interpreter cross-tests) compare against
//! them.

use iatf_simd::Real;

/// Minimal deterministic generator for kernel tests (SplitMix64).
pub struct TestRng(u64);

#[allow(clippy::should_implement_trait)]
impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Uniform value in `[-0.5, 0.5)` — zero-mean keeps accumulations small.
    pub fn next(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5
    }
}

/// Reference for [`crate::gemm_ukr`] on *packed* panels.
///
/// `pa` is `k` slivers of `mr` vector groups (`p` scalars each), `pb` is `k`
/// slivers of `nr` groups, `c0` the prior C tile (`mr × nr` groups,
/// column-major: group `(i, j)` at `(j·mr + i)·p`). Returns the expected C
/// tile in the same order, computed in f64.
pub fn real_gemm_tile<R: Real>(
    mr: usize,
    nr: usize,
    k: usize,
    p: usize,
    alpha: f64,
    beta: f64,
    pa: &[R],
    pb: &[R],
    c0: &[R],
) -> Vec<f64> {
    let mut out = vec![0.0; mr * nr * p];
    for i in 0..mr {
        for j in 0..nr {
            for l in 0..p {
                let mut dot = 0.0;
                for kk in 0..k {
                    let a = pa[(kk * mr + i) * p + l].to_f64();
                    let b = pb[(kk * nr + j) * p + l].to_f64();
                    dot += a * b;
                }
                let prior = c0[(j * mr + i) * p + l].to_f64();
                out[(j * mr + i) * p + l] = alpha * dot + beta * prior;
            }
        }
    }
    out
}

/// Reference for [`crate::cgemm_ukr`] on packed split-complex panels.
///
/// Element groups are `2·p` scalars (`p` reals then `p` imaginaries).
pub fn cplx_gemm_tile<R: Real>(
    mr: usize,
    nr: usize,
    k: usize,
    p: usize,
    alpha: [f64; 2],
    beta: [f64; 2],
    pa: &[R],
    pb: &[R],
    c0: &[R],
) -> Vec<f64> {
    let g = 2 * p;
    let mut out = vec![0.0; mr * nr * g];
    for i in 0..mr {
        for j in 0..nr {
            for l in 0..p {
                let mut dre = 0.0;
                let mut dim = 0.0;
                for kk in 0..k {
                    let ab = (kk * mr + i) * g;
                    let bb = (kk * nr + j) * g;
                    let (ar, ai) = (pa[ab + l].to_f64(), pa[ab + p + l].to_f64());
                    let (br, bi) = (pb[bb + l].to_f64(), pb[bb + p + l].to_f64());
                    dre += ar * br - ai * bi;
                    dim += ar * bi + ai * br;
                }
                let cb = (j * mr + i) * g;
                let (cr, ci) = (c0[cb + l].to_f64(), c0[cb + p + l].to_f64());
                out[cb + l] = alpha[0] * dre - alpha[1] * dim + beta[0] * cr - beta[1] * ci;
                out[cb + p + l] = alpha[0] * dim + alpha[1] * dre + beta[0] * ci + beta[1] * cr;
            }
        }
    }
    out
}

/// Reference for the fused TRSM block kernel on packed operands (real).
///
/// Layouts (all per lane `l < p`):
/// * `pa_rect`: `kk` slivers of `mr` vector groups — `A(row0+i, col k)`;
/// * `pa_tri`: the `mr × mr` diagonal block's lower triangle, rows
///   concatenated (row `r` holds `r+1` groups), diagonal stored as its
///   reciprocal;
/// * `panel`: the B/X panel, row-major — row `r` at `r·row_stride`, column
///   `j` at `j·col_stride` (strides in scalars).
///
/// Returns the expected panel contents after
/// `X[row0..row0+mr] = Tri⁻¹ · (B[row0..] − Rect · X[0..kk])`.
#[allow(clippy::too_many_arguments)]
pub fn real_trsm_block(
    mr: usize,
    nr: usize,
    kk: usize,
    p: usize,
    pa_rect: &[f64],
    pa_tri: &[f64],
    panel: &[f64],
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) -> Vec<f64> {
    let mut out = panel.to_vec();
    for l in 0..p {
        for j in 0..nr {
            // gather the block's column j into a scratch vector
            let mut b: Vec<f64> = (0..mr)
                .map(|i| out[(row0 + i) * row_stride + j * col_stride + l])
                .collect();
            // rectangular elimination against already-solved rows
            for i in 0..mr {
                for k in 0..kk {
                    let a = pa_rect[(k * mr + i) * p + l];
                    let x = out[k * row_stride + j * col_stride + l];
                    b[i] -= a * x;
                }
            }
            // triangular solve with reciprocal diagonal
            for i in 0..mr {
                let row_base = i * (i + 1) / 2;
                for jj in 0..i {
                    let a = pa_tri[(row_base + jj) * p + l];
                    b[i] -= a * b[jj];
                }
                let rdiag = pa_tri[(row_base + i) * p + l];
                b[i] *= rdiag;
            }
            for i in 0..mr {
                out[(row0 + i) * row_stride + j * col_stride + l] = b[i];
            }
        }
    }
    out
}

/// Complex counterpart of [`real_trsm_block`]; element groups are `2·p`
/// scalars and the packed diagonal holds the complex reciprocal.
#[allow(clippy::too_many_arguments)]
pub fn cplx_trsm_block(
    mr: usize,
    nr: usize,
    kk: usize,
    p: usize,
    pa_rect: &[f64],
    pa_tri: &[f64],
    panel: &[f64],
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) -> Vec<f64> {
    let g = 2 * p;
    let mut out = panel.to_vec();
    let cmul = |ar: f64, ai: f64, br: f64, bi: f64| (ar * br - ai * bi, ar * bi + ai * br);
    for l in 0..p {
        for j in 0..nr {
            let mut b: Vec<(f64, f64)> = (0..mr)
                .map(|i| {
                    let base = (row0 + i) * row_stride + j * col_stride;
                    (out[base + l], out[base + p + l])
                })
                .collect();
            for i in 0..mr {
                for k in 0..kk {
                    let ab = (k * mr + i) * g;
                    let (ar, ai) = (pa_rect[ab + l], pa_rect[ab + p + l]);
                    let xb = k * row_stride + j * col_stride;
                    let (xr, xi) = (out[xb + l], out[xb + p + l]);
                    let (pr, pi) = cmul(ar, ai, xr, xi);
                    b[i].0 -= pr;
                    b[i].1 -= pi;
                }
            }
            for i in 0..mr {
                let row_base = i * (i + 1) / 2;
                for jj in 0..i {
                    let ab = (row_base + jj) * g;
                    let (ar, ai) = (pa_tri[ab + l], pa_tri[ab + p + l]);
                    let (pr, pi) = cmul(ar, ai, b[jj].0, b[jj].1);
                    b[i].0 -= pr;
                    b[i].1 -= pi;
                }
                let db = (row_base + i) * g;
                let (dr, di) = (pa_tri[db + l], pa_tri[db + p + l]);
                b[i] = cmul(b[i].0, b[i].1, dr, di);
            }
            for i in 0..mr {
                let base = (row0 + i) * row_stride + j * col_stride;
                out[base + l] = b[i].0;
                out[base + p + l] = b[i].1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_zero_mean() {
        let mut rng = TestRng::new(3);
        let mean: f64 = (0..10_000).map(|_| rng.next()).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.02);
    }

    #[test]
    fn real_tile_identity_case() {
        // mr=nr=k=1, p=2: out = alpha*a*b + beta*c per lane.
        let pa = [2.0f64, 3.0];
        let pb = [5.0f64, 7.0];
        let c0 = [1.0f64, 1.0];
        let out = real_gemm_tile(1, 1, 1, 2, 2.0, 0.5, &pa, &pb, &c0);
        assert_eq!(out, vec![2.0 * 10.0 + 0.5, 2.0 * 21.0 + 0.5]);
    }

    #[test]
    fn trsm_block_solves_lower_system() {
        // 2×2 lower triangle, p=1, one column, kk=0.
        // L = [[2, 0], [1, 4]] packed as rows with reciprocal diag:
        // row0: [1/2]; row1: [1, 1/4]
        let pa_tri = [0.5, 1.0, 0.25];
        let panel = [6.0, 7.0]; // b
        let out = real_trsm_block(2, 1, 0, 1, &[], &pa_tri, &panel, 0, 1, 1);
        // x0 = 6/2 = 3; x1 = (7 - 1*3)/4 = 1
        assert_eq!(out, vec![3.0, 1.0]);
    }

    #[test]
    fn trsm_block_applies_rect_update() {
        // One solved row x=2 above; block is a single row with A(1,0)=3,
        // diag 5: x1 = (11 - 3*2)/5 = 1.
        let pa_rect = [3.0];
        let pa_tri = [0.2];
        let panel = [2.0, 11.0];
        let out = real_trsm_block(1, 1, 1, 1, &pa_rect, &pa_tri, &panel, 1, 1, 1);
        assert_eq!(out, vec![2.0, 1.0]);
    }

    #[test]
    fn cplx_block_matches_manual() {
        // 1×1 system: (2+i)·x = (3-i) → x = (3-i)/(2+i) = (1-i).
        let d = (2.0, 1.0);
        let n = d.0 * d.0 + d.1 * d.1;
        let pa_tri = [d.0 / n, -d.1 / n]; // reciprocal
        let panel = [3.0, -1.0];
        let out = cplx_trsm_block(1, 1, 0, 1, &[], &pa_tri, &panel, 0, 2, 2);
        assert!((out[0] - 1.0).abs() < 1e-14);
        assert!((out[1] + 1.0).abs() < 1e-14);
    }
}
