//! `#[target_feature]` entry wrappers for the wide x86_64 backends.
//!
//! The workspace compiles for baseline x86_64 (SSE2), so the AVX2 and
//! AVX-512 vector types from `iatf-simd` would codegen as split 128-bit
//! halves (or libcalls, for FMA) if their operations were compiled in a
//! baseline function. These wrappers fix that: each is the *same* generic
//! microkernel body, monomorphized inside a function carrying the matching
//! `#[target_feature(enable = ...)]` attribute. The bodies are
//! `#[inline(always)]`, so LLVM folds them into the wrapper and emits true
//! 256-/512-bit instructions. The wrappers coerce to the same
//! width-independent kernel function-pointer types
//! ([`RealGemmKernel`](crate::RealGemmKernel) and friends) as the baseline
//! kernels, which is what lets one dispatch-table type serve every width.
//!
//! # Module safety contract
//! Every function here is `unsafe` on two counts: the kernel
//! pointer/stride contract it forwards verbatim, and the `target_feature`
//! attribute — calling one on a host without the feature is immediate
//! undefined behavior (illegal instruction). The kernel registry only hands
//! out these pointers for widths present in
//! [`iatf_simd::available_widths`], whose entries are runtime-probed with
//! `is_x86_feature_detected!`; tests that call them directly must perform
//! the same check first.

use iatf_simd::SimdReal;

macro_rules! width_wrapper_mod {
    ($modname:ident, $isa:literal, $($feat:literal),+) => {
        #[doc = concat!("Kernel entry points compiled with the ", $isa, " target features enabled.")]
        pub mod $modname {
            use super::SimdReal;

            /// Real GEMM microkernel at this ISA; see [`crate::gemm::gemm_ukr`].
            ///
            /// # Safety
            /// As [`crate::gemm::gemm_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn gemm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                k: usize,
                alpha: V::Scalar,
                beta: V::Scalar,
                pa: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pb: *const V::Scalar,
                b_j: usize,
                b_k: usize,
                c: *mut V::Scalar,
                c_i: usize,
                c_j: usize,
            ) {
                crate::gemm::gemm_ukr::<V, MR, NR>(k, alpha, beta, pa, a_i, a_k, pb, b_j, b_k, c, c_i, c_j)
            }

            /// Complex GEMM microkernel at this ISA; see [`crate::gemm::cgemm_ukr`].
            ///
            /// # Safety
            /// As [`crate::gemm::cgemm_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn cgemm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                k: usize,
                alpha: [V::Scalar; 2],
                beta: [V::Scalar; 2],
                pa: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pb: *const V::Scalar,
                b_j: usize,
                b_k: usize,
                c: *mut V::Scalar,
                c_i: usize,
                c_j: usize,
            ) {
                crate::gemm::cgemm_ukr::<V, MR, NR>(k, alpha, beta, pa, a_i, a_k, pb, b_j, b_k, c, c_i, c_j)
            }

            /// Fused real TRSM block kernel at this ISA; see [`crate::trsm::trsm_ukr`].
            ///
            /// # Safety
            /// As [`crate::trsm::trsm_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn trsm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                kk: usize,
                pa_rect: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pa_tri: *const V::Scalar,
                panel: *mut V::Scalar,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                crate::trsm::trsm_ukr::<V, MR, NR>(kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            /// Rect-only real TRSM kernel at this ISA; see [`crate::trsm::trsm_rect_ukr`].
            ///
            /// # Safety
            /// As [`crate::trsm::trsm_rect_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn trsm_rect_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                kk: usize,
                pa_rect: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pa_tri: *const V::Scalar,
                panel: *mut V::Scalar,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                crate::trsm::trsm_rect_ukr::<V, MR, NR>(kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            /// Fused complex TRSM block kernel at this ISA; see [`crate::trsm::ctrsm_ukr`].
            ///
            /// # Safety
            /// As [`crate::trsm::ctrsm_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn ctrsm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                kk: usize,
                pa_rect: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pa_tri: *const V::Scalar,
                panel: *mut V::Scalar,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                crate::trsm::ctrsm_ukr::<V, MR, NR>(kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            /// Rect-only complex TRSM kernel at this ISA; see [`crate::trsm::ctrsm_rect_ukr`].
            ///
            /// # Safety
            /// As [`crate::trsm::ctrsm_rect_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn ctrsm_rect_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                kk: usize,
                pa_rect: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pa_tri: *const V::Scalar,
                panel: *mut V::Scalar,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                crate::trsm::ctrsm_rect_ukr::<V, MR, NR>(kk, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            /// Fused real TRMM block kernel at this ISA; see [`crate::trmm::trmm_ukr`].
            ///
            /// # Safety
            /// As [`crate::trmm::trmm_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn trmm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                kk: usize,
                alpha: V::Scalar,
                pa_rect: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pa_tri: *const V::Scalar,
                panel: *mut V::Scalar,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                crate::trmm::trmm_ukr::<V, MR, NR>(kk, alpha, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }

            /// Fused complex TRMM block kernel at this ISA; see [`crate::trmm::ctrmm_ukr`].
            ///
            /// # Safety
            /// As [`crate::trmm::ctrmm_ukr`]; additionally the host must
            #[doc = concat!("support ", $isa, " (see the module contract).")]
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn ctrmm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
                kk: usize,
                alpha: [V::Scalar; 2],
                pa_rect: *const V::Scalar,
                a_i: usize,
                a_k: usize,
                pa_tri: *const V::Scalar,
                panel: *mut V::Scalar,
                row0: usize,
                row_stride: usize,
                col_stride: usize,
            ) {
                crate::trmm::ctrmm_ukr::<V, MR, NR>(kk, alpha, pa_rect, a_i, a_k, pa_tri, panel, row0, row_stride, col_stride)
            }
        }
    };
}

width_wrapper_mod!(avx2, "AVX2+FMA", "avx", "avx2", "fma");
width_wrapper_mod!(avx512, "AVX-512F", "avx512f");

#[cfg(test)]
mod tests {
    use iatf_simd::{width_available, SimdReal, VecWidth};

    /// A 1×1 AVX2 GEMM tile through the wrapper must match the baseline
    /// kernel bit for bit at its own width (same fused accumulation order).
    #[test]
    fn avx2_wrapper_matches_direct_body() {
        if !width_available(VecWidth::W256) {
            return;
        }
        use iatf_simd::F32x8;
        const P: usize = 8;
        let k = 3;
        let pa: Vec<f32> = (0..k * P).map(|i| 0.25 + i as f32 * 0.5).collect();
        let pb: Vec<f32> = (0..k * P).map(|i| 1.5 - i as f32 * 0.25).collect();
        let mut c = vec![0.0f32; P];
        // SAFETY: slivers hold `k` groups of `P` lanes each and the C tile one
        // group; W256 availability was checked above, satisfying the wrapper's
        // target-feature contract.
        unsafe {
            super::avx2::gemm_ukr::<F32x8, 1, 1>(
                k, 1.0, 0.0, pa.as_ptr(), P, P, pb.as_ptr(), P, P, c.as_mut_ptr(), P, P,
            );
        }
        for l in 0..P {
            let mut want = 0.0f32;
            for kk in 0..k {
                want = pa[kk * P + l].mul_add(pb[kk * P + l], want);
            }
            assert_eq!(c[l], want, "lane {l}");
        }
        let _ = F32x8::LANES;
    }
}
