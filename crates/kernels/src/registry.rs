//! Per-microarchitecture kernel registry.
//!
//! One row per (µarch, vector width) combination compiled into this build:
//! the lane counts that become the interleaving factor `P`, the k-loop
//! blocking depth the microkernels unroll to, whether the ping-pong
//! two-deep software pipeline is worth running there, whether the packers
//! should issue software prefetch, and the L1-budget fractions the
//! autotuner should sweep. The registry is the single place this
//! knowledge lives: the Batch Counter and Pack Selecter read lane counts
//! and prefetch policy from here, the plan builders stamp the row into
//! their explain output, and `iatf-core::autotune` draws its
//! `l1_budget_fraction` candidate list from [`KernelRegistryRow::l1_fractions`].
//!
//! Rows describe *compiled-in* capability; [`rows`] filters them down to
//! what the running host can actually execute (via
//! [`iatf_simd::available_widths`]), and [`dispatched_row`] is the row the
//! process-wide width dispatch selected. A row handed out by [`rows`] or
//! [`dispatched_row`] is therefore always safe to execute through
//! [`KernelScalar::tables`](crate::table::KernelScalar::tables).

use iatf_simd::{available_widths, dispatched_width, VecWidth};

/// One registry row: everything the planning layers need to know about
/// running the kernel set at one width on one microarchitecture.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KernelRegistryRow {
    /// Microarchitecture tag, e.g. `"x86_64-avx2"`. Stable across runs on
    /// the same build+host; recorded in benchmark metadata so baselines
    /// from a different µarch/width are detected instead of misread.
    pub uarch: &'static str,
    /// The vector width this row describes.
    pub width: VecWidth,
    /// `f32` lanes per vector — the interleaving factor `P` for `f32`/`c32`.
    pub lanes_f32: usize,
    /// `f64` lanes per vector — the interleaving factor `P` for `f64`/`c64`.
    pub lanes_f64: usize,
    /// k-loop blocking depth the microkernels are scheduled around. The
    /// pipelined kernels rotate two register sets, so the effective unroll
    /// is `2·kblock`; the scalar row runs the straight-line body.
    pub kblock: usize,
    /// Whether the ping-pong two-deep software pipeline is active at this
    /// width (the scalar reference row runs the no-pipeline bodies, so its
    /// flag is honest about what executes).
    pub pipeline: bool,
    /// Whether packing routines should issue software prefetch for the
    /// next panel. Wider vectors consume panels faster, so prefetch stays
    /// on everywhere except the scalar reference row.
    pub prefetch: bool,
    /// `l1_budget_fraction` candidates the autotuner sweeps at this width,
    /// in ascending order. Wider vectors have larger packed working sets
    /// per tile, so the wide rows extend the sweep one step down.
    pub l1_fractions: &'static [f64],
}

/// Sweep fractions for the 128-bit-and-narrower rows (the original
/// autotune candidate set — keeping it unchanged keeps plan caches and
/// tuning sweeps for those widths byte-identical to the pre-registry
/// behaviour).
const NARROW_FRACTIONS: &[f64] = &[0.25, 0.5, 1.0];
/// Sweep fractions for the 256-/512-bit rows: one extra step down since a
/// wide tile's packed slivers are 2–4× larger.
const WIDE_FRACTIONS: &[f64] = &[0.125, 0.25, 0.5, 1.0];

/// µarch tag for the portable scalar reference backend.
pub const UARCH_SCALAR: &str = "portable-scalar";
/// µarch tag for the 128-bit backend on x86_64 (SSE2 baseline).
#[cfg(target_arch = "x86_64")]
pub const UARCH_W128: &str = "x86_64-sse2";
/// µarch tag for the 128-bit backend on aarch64 (NEON — the paper's
/// Kunpeng 920 configuration).
#[cfg(target_arch = "aarch64")]
pub const UARCH_W128: &str = "armv8-neon";
/// µarch tag for the 128-bit-equivalent scalar fallback on other arches.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const UARCH_W128: &str = "portable-scalar";

/// Every row compiled into this build, narrowest first. Entries beyond
/// `W128` exist only on `x86_64`, matching the backends in `iatf-simd`.
pub const COMPILED_ROWS: &[KernelRegistryRow] = &[
    KernelRegistryRow {
        uarch: UARCH_SCALAR,
        width: VecWidth::Scalar,
        lanes_f32: 4,
        lanes_f64: 2,
        kblock: 1,
        pipeline: false,
        prefetch: false,
        l1_fractions: NARROW_FRACTIONS,
    },
    KernelRegistryRow {
        uarch: UARCH_W128,
        width: VecWidth::W128,
        lanes_f32: 4,
        lanes_f64: 2,
        kblock: 2,
        pipeline: true,
        prefetch: true,
        l1_fractions: NARROW_FRACTIONS,
    },
    #[cfg(target_arch = "x86_64")]
    KernelRegistryRow {
        uarch: "x86_64-avx2",
        width: VecWidth::W256,
        lanes_f32: 8,
        lanes_f64: 4,
        kblock: 2,
        pipeline: true,
        prefetch: true,
        l1_fractions: WIDE_FRACTIONS,
    },
    #[cfg(target_arch = "x86_64")]
    KernelRegistryRow {
        uarch: "x86_64-avx512",
        width: VecWidth::W512,
        lanes_f32: 16,
        lanes_f64: 8,
        kblock: 2,
        pipeline: true,
        prefetch: true,
        l1_fractions: WIDE_FRACTIONS,
    },
];

/// The registry rows the running host can execute, narrowest first.
/// Always contains the `Scalar` and `W128` rows.
pub fn rows() -> impl Iterator<Item = &'static KernelRegistryRow> {
    available_widths()
        .iter()
        .filter_map(|w| COMPILED_ROWS.iter().find(|r| r.width == *w))
}

/// The compiled-in row for `width`, independent of host capability.
/// Widths with no compiled backend (256/512-bit off `x86_64`) fall back to
/// the `W128` row, mirroring
/// [`KernelScalar::tables`](crate::table::KernelScalar::tables).
pub fn row_for(width: VecWidth) -> &'static KernelRegistryRow {
    COMPILED_ROWS
        .iter()
        .find(|r| r.width == width)
        .unwrap_or_else(|| {
            COMPILED_ROWS
                .iter()
                .find(|r| r.width == VecWidth::W128)
                .expect("W128 row is always compiled in")
        })
}

/// The registry row for the width the process-wide dispatch selected
/// (widest available, unless `IATF_FORCE_WIDTH` narrowed it).
pub fn dispatched_row() -> &'static KernelRegistryRow {
    row_for(dispatched_width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_simd::{width_available, DType};

    #[test]
    fn compiled_rows_are_sorted_and_unique() {
        for pair in COMPILED_ROWS.windows(2) {
            assert!(pair[0].width.bits() < pair[1].width.bits());
        }
    }

    #[test]
    fn lane_counts_match_width() {
        for row in COMPILED_ROWS {
            assert_eq!(row.lanes_f32, DType::F32.p_at(row.width), "{}", row.uarch);
            assert_eq!(row.lanes_f64, DType::F64.p_at(row.width), "{}", row.uarch);
        }
    }

    #[test]
    fn available_rows_are_executable() {
        let mut n = 0;
        for row in rows() {
            assert!(width_available(row.width), "{}", row.uarch);
            n += 1;
        }
        assert!(n >= 2, "Scalar and W128 rows must always be present");
    }

    #[test]
    fn dispatched_row_matches_dispatched_width() {
        assert_eq!(dispatched_row().width, dispatched_width());
    }

    #[test]
    fn fallback_rows_for_uncompiled_widths() {
        #[cfg(not(target_arch = "x86_64"))]
        {
            assert_eq!(row_for(VecWidth::W256).width, VecWidth::W128);
            assert_eq!(row_for(VecWidth::W512).width, VecWidth::W128);
        }
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(row_for(VecWidth::W256).lanes_f32, 8);
            assert_eq!(row_for(VecWidth::W512).lanes_f64, 8);
        }
        assert_eq!(row_for(VecWidth::Scalar).uarch, UARCH_SCALAR);
    }

    #[test]
    fn fractions_stay_sorted_and_in_range() {
        for row in COMPILED_ROWS {
            for pair in row.l1_fractions.windows(2) {
                assert!(pair[0] < pair[1]);
            }
            assert!(row.l1_fractions.iter().all(|f| *f > 0.0 && *f <= 1.0));
            // The heuristic default (0.5) must always be a sweep candidate,
            // so candidate 0 (the baseline) is never a duplicate.
            assert!(row.l1_fractions.contains(&0.5), "{}", row.uarch);
        }
    }
}
