//! TRMM microkernels — triangular matrix multiply, the first of the
//! paper's future-work "other BLAS functions under the SIMD-friendly data
//! layout".
//!
//! Canonical operation (modes are canonicalized by the same index maps as
//! TRSM): `B = α · L · B` with `L` lower triangular, over an `nr`-wide
//! row-major B panel. Row `i` of the result needs *original* rows `j ≤ i`,
//! so the driver walks diagonal blocks **bottom-up** and each block kernel
//! reads only rows at or above itself — which are still original when it
//! runs.
//!
//! Per block (`mb` rows starting at `row0`, preceded by `kk = row0` rows):
//!
//! ```text
//! acc = Tri(block) · B[row0 .. row0+mb]        (triangle includes diagonal)
//! acc += Rect · B[0 .. kk]                     (FMA over the rows above)
//! B[row0 ..] = α · acc
//! ```
//!
//! Packed layouts are shared with TRSM (`iatf_pack::trsm`), except the
//! diagonal is stored *directly* (multiplied, not divided — no reciprocal
//! needed here; unit diagonals pack as 1).

use iatf_simd::{prefetch_read, CVec, SimdReal};

/// Function-pointer type of a monomorphized real TRMM block kernel.
// SAFETY: unsafe fn type — callers must pass panel/packed pointers valid for the extents implied by (kk, MR, NR, strides); see the packing contract above.
pub type RealTrmmKernel<R> = unsafe fn(
    kk: usize,
    alpha: R,
    pa_rect: *const R,
    a_i: usize,
    a_k: usize,
    pa_tri: *const R,
    panel: *mut R,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
);

/// Complex counterpart of [`RealTrmmKernel`] (`alpha` as `[re, im]`).
// SAFETY: unsafe fn type — callers must pass panel/packed pointers valid for the extents implied by (kk, MR, NR, strides); see the packing contract above.
pub type CplxTrmmKernel<R> = unsafe fn(
    kk: usize,
    alpha: [R; 2],
    pa_rect: *const R,
    a_i: usize,
    a_k: usize,
    pa_tri: *const R,
    panel: *mut R,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
);

#[inline(always)]
// SAFETY: unsafe fn — `p` must be valid for the whole strided extent (`(N-1)*stride + LANES` scalars); each lane load stays inside it.
unsafe fn load_set<V: SimdReal, const N: usize>(p: *const V::Scalar, stride: usize) -> [V; N] {
    let mut out = [V::zero(); N];
    for (i, o) in out.iter_mut().enumerate() {
        *o = V::load(p.add(i * stride));
    }
    out
}

/// Fused real TRMM block kernel.
///
/// # Safety
/// Same operand contract as `iatf_kernels::trsm_ukr` (packed rect strip,
/// packed triangle with *direct* diagonal, row-major panel).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub unsafe fn trmm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    kk: usize,
    alpha: V::Scalar,
    mut pa_rect: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    pa_tri: *const V::Scalar,
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    let p = V::LANES;
    prefetch_read(panel.add(row0 * row_stride));
    let mut acc = [[V::zero(); NR]; MR];

    // triangular part: acc_i = Σ_{j ≤ i} L(i,j) · B_orig(row0+j)
    let mut tri = pa_tri;
    for i in 0..MR {
        for j in 0..=i {
            let lij = V::load(tri);
            tri = tri.add(p);
            for col in 0..NR {
                let x = V::load(panel.add((row0 + j) * row_stride + col * col_stride));
                acc[i][col] = acc[i][col].fma(lij, x);
            }
        }
    }

    // rectangular part over the rows above the block (double-buffered)
    if kk == 1 {
        let a0 = load_set::<V, MR>(pa_rect, a_i);
        let x0 = load_set::<V, NR>(panel, col_stride);
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] = acc[i][j].fma(a0[i], x0[j]);
            }
        }
    } else if kk >= 2 {
        let mut a0 = load_set::<V, MR>(pa_rect, a_i);
        let mut a1 = load_set::<V, MR>(pa_rect.add(a_k), a_i);
        pa_rect = pa_rect.add(2 * a_k);
        let mut x0 = load_set::<V, NR>(panel, col_stride);
        let mut x1 = load_set::<V, NR>(panel.add(row_stride), col_stride);
        let mut xrow = 2usize;
        let mut k = 0usize;
        while k < kk {
            let (a, x) = if k % 2 == 0 { (&a0, &x0) } else { (&a1, &x1) };
            for i in 0..MR {
                for j in 0..NR {
                    acc[i][j] = acc[i][j].fma(a[i], x[j]);
                }
            }
            if k + 2 < kk {
                if k % 2 == 0 {
                    a0 = load_set::<V, MR>(pa_rect, a_i);
                    x0 = load_set::<V, NR>(panel.add(xrow * row_stride), col_stride);
                } else {
                    a1 = load_set::<V, MR>(pa_rect, a_i);
                    x1 = load_set::<V, NR>(panel.add(xrow * row_stride), col_stride);
                }
                pa_rect = pa_rect.add(a_k);
                xrow += 1;
            }
            k += 1;
        }
    }

    // scale and store
    let va = V::splat(alpha);
    for (i, row) in acc.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            cell.mul(va)
                .store(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
}

/// Fused complex TRMM block kernel (split representation).
///
/// # Safety
/// As [`trmm_ukr`] with `2·P`-scalar element groups.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub unsafe fn ctrmm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    kk: usize,
    alpha: [V::Scalar; 2],
    mut pa_rect: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    pa_tri: *const V::Scalar,
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    let g = 2 * V::LANES;
    prefetch_read(panel.add(row0 * row_stride));
    let mut acc = [[CVec::<V>::zero(); NR]; MR];

    let mut tri = pa_tri;
    for i in 0..MR {
        for j in 0..=i {
            let lij = CVec::<V>::load(tri);
            tri = tri.add(g);
            for col in 0..NR {
                let x =
                    CVec::<V>::load(panel.add((row0 + j) * row_stride + col * col_stride));
                acc[i][col] = acc[i][col].fma(lij, x);
            }
        }
    }

    let mut k = 0usize;
    while k < kk {
        let a = {
            let mut out = [CVec::<V>::zero(); MR];
            for (i, o) in out.iter_mut().enumerate() {
                *o = CVec::load(pa_rect.add(i * a_i));
            }
            out
        };
        pa_rect = pa_rect.add(a_k);
        for i in 0..MR {
            for j in 0..NR {
                let x = CVec::<V>::load(panel.add(k * row_stride + j * col_stride));
                acc[i][j] = acc[i][j].fma(a[i], x);
            }
        }
        k += 1;
    }

    for (i, row) in acc.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            cell.scale(alpha[0], alpha[1])
                .store(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TestRng;
    use iatf_simd::{F32x4, F64x2, Real};

    /// Scalar reference: acc_i = α·(Σ_{k<kk} rect(i,k)·panel[k] +
    /// Σ_{j≤i} tri(i,j)·panel[row0+j]), stored into rows row0..row0+mr.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        mr: usize,
        nr: usize,
        kk: usize,
        p: usize,
        alpha: f64,
        rect: &[f64],
        tri: &[f64],
        panel: &[f64],
        row0: usize,
        row_stride: usize,
    ) -> Vec<f64> {
        let mut out = panel.to_vec();
        for l in 0..p {
            for j in 0..nr {
                for i in 0..mr {
                    let mut acc = 0.0;
                    for k in 0..kk {
                        acc += rect[(k * mr + i) * p + l] * panel[k * row_stride + j * p + l];
                    }
                    for jj in 0..=i {
                        let a = tri[(i * (i + 1) / 2 + jj) * p + l];
                        acc += a * panel[(row0 + jj) * row_stride + j * p + l];
                    }
                    out[(row0 + i) * row_stride + j * p + l] = alpha * acc;
                }
            }
        }
        out
    }

    fn check<V: SimdReal, const MR: usize, const NR: usize>(kk: usize, alpha: f64) {
        let p = V::LANES;
        let rows = kk + MR;
        let mut rng = TestRng::new((MR * 19 + NR * 3 + kk) as u64);
        let rect: Vec<V::Scalar> = (0..kk * MR * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let tri: Vec<V::Scalar> = (0..MR * (MR + 1) / 2 * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let panel0: Vec<V::Scalar> = (0..rows * NR * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let mut panel = panel0.clone();
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these (kk, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            trmm_ukr::<V, MR, NR>(
                kk,
                V::Scalar::from_f64(alpha),
                rect.as_ptr(),
                p,
                MR * p,
                tri.as_ptr(),
                panel.as_mut_ptr(),
                kk,
                NR * p,
                p,
            );
        }
        let rect_f: Vec<f64> = rect.iter().map(|x| x.to_f64()).collect();
        let tri_f: Vec<f64> = tri.iter().map(|x| x.to_f64()).collect();
        let panel_f: Vec<f64> = panel0.iter().map(|x| x.to_f64()).collect();
        let want = reference(MR, NR, kk, p, alpha, &rect_f, &tri_f, &panel_f, kk, NR * p);
        let tol = if V::Scalar::BYTES == 4 { 1e-4 } else { 1e-12 };
        for (idx, (got, w)) in panel.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.to_f64() - w).abs() <= tol * w.abs().max(1.0),
                "trmm {MR}x{NR} kk={kk}: idx {idx}: {got} vs {w}"
            );
        }
    }

    #[test]
    fn real_blocks_match_reference() {
        for kk in [0usize, 1, 2, 3, 5, 9] {
            check::<F64x2, 4, 4>(kk, 1.0);
            check::<F64x2, 2, 3>(kk, -0.5);
            check::<F32x4, 4, 4>(kk, 2.0);
            check::<F32x4, 1, 2>(kk, 1.0);
            check::<F64x2, 3, 1>(kk, 1.5);
        }
    }

    #[test]
    fn complex_block_matches_manual() {
        // 1×1 block, no rect: out = α·l·x per lane
        let p = F64x2::LANES;
        let tri = [2.0, 3.0, 0.5, -0.5]; // re lanes | im lanes
        let panel0 = [1.0, 1.0, 1.0, 0.0]; // x = (1+i, 1)
        let mut panel = panel0;
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these (kk, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            ctrmm_ukr::<F64x2, 1, 1>(
                0,
                [1.0, 0.0],
                core::ptr::null(),
                0,
                0,
                tri.as_ptr(),
                panel.as_mut_ptr(),
                0,
                2 * p,
                2 * p,
            );
        }
        // lane 0: (2+0.5i)(1+i) = 1.5 + 2.5i; lane 1: (3−0.5i)(1) = 3 − 0.5i
        assert!((panel[0] - 1.5).abs() < 1e-14);
        assert!((panel[1] - 3.0).abs() < 1e-14);
        assert!((panel[2] - 2.5).abs() < 1e-14);
        assert!((panel[3] + 0.5).abs() < 1e-14);
    }
}
