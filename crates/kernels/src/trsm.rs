//! TRSM microkernels (paper §4.2.2, Algorithm 4 and the FMLS rectangular
//! kernels of Eq. 4).
//!
//! The canonical operation (after the packing kernels have normalized every
//! mode — side/uplo/trans/diag — into it) is the *left, lower,
//! non-transposed* block solve on an `M × nr` column panel of B held in a
//! row-major packed panel:
//!
//! ```text
//! X[row0 .. row0+m_r] = Tri⁻¹ · ( B[row0 ..] − Rect · X[0 .. kk] )
//! ```
//!
//! * The **rectangular** phase subtracts the contribution of the `kk`
//!   already-solved rows with fused multiply-*subtract* (NEON `FMLS`). A
//!   general GEMM kernel would spend `M·N` extra multiplies on `alpha`; the
//!   dedicated FMLS kernel saves them (paper Eq. 4) — the saving is
//!   measurable at small sizes and reproduced by the `ablation_fmls` bench.
//! * The **triangular** phase is Algorithm 4: the diagonal block's triangle
//!   is register-resident; diagonal elements were packed as *reciprocals*
//!   (1/a_ii), so the solve multiplies instead of dividing (§4.4). Unit
//!   diagonals are packed as reciprocal 1, making one kernel serve both
//!   `Diag` modes.
//!
//! The rectangular phase is software-pipelined two deep exactly like the
//! GEMM kernels.

use iatf_simd::{prefetch_read, CVec, SimdReal};

/// Function-pointer type of a monomorphized real TRSM block kernel.
///
/// See the module docs for the operation. `pa_rect` addresses like a GEMM A
/// sliver (`a_i` between rows, `a_k` between k-steps); `pa_tri` is the
/// packed triangle (row `r` holds `r+1` vector groups, reciprocal diagonal
/// last); the panel is addressed as `panel + row·row_stride + col·col_stride`.
// SAFETY: unsafe fn type — callers must pass packed-triangle/rect/panel pointers valid for the extents implied by (kk, MR, NR, strides) per the addressing contract above.
pub type RealTrsmKernel<R> = unsafe fn(
    kk: usize,
    pa_rect: *const R,
    a_i: usize,
    a_k: usize,
    pa_tri: *const R,
    panel: *mut R,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
);

/// Complex counterpart of [`RealTrsmKernel`] (split `2·P` element groups).
pub type CplxTrsmKernel<R> = RealTrsmKernel<R>;

/// Rectangular-phase-only kernel (the paper's Table 1 "rectangular" TRSM
/// kernels), used standalone in the FMLS-vs-GEMM ablation.
pub type RealTrsmRectKernel<R> = RealTrsmKernel<R>;
/// Complex rectangular-phase-only kernel.
pub type CplxTrsmRectKernel<R> = RealTrsmKernel<R>;

#[inline(always)]
// SAFETY: unsafe fn — `p` must be valid for the whole strided extent (`(N-1)*stride + LANES` scalars); each lane load stays inside it.
unsafe fn load_set<V: SimdReal, const N: usize>(p: *const V::Scalar, stride: usize) -> [V; N] {
    let mut out = [V::zero(); N];
    for (i, o) in out.iter_mut().enumerate() {
        *o = V::load(p.add(i * stride));
    }
    out
}

#[inline(always)]
fn fms_tile<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[V; NR]; MR],
    a: &[V; MR],
    x: &[V; NR],
) {
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] = acc[i][j].fms(a[i], x[j]);
        }
    }
}

#[inline(always)]
// SAFETY: unsafe fn — `panel` must cover rows `row0..row0+MR` and `NR` columns at the given strides; every lane access stays inside that block.
unsafe fn load_block<V: SimdReal, const MR: usize, const NR: usize>(
    panel: *const V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) -> [[V; NR]; MR] {
    let mut acc = [[V::zero(); NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = V::load(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
    acc
}

#[inline(always)]
// SAFETY: unsafe fn — `panel` must cover rows `row0..row0+MR` and `NR` columns at the given strides; every lane access stays inside that block.
unsafe fn store_block<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &[[V; NR]; MR],
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    for (i, row) in acc.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            cell.store(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
}

/// Rectangular elimination `acc -= Rect · X[0..kk]`, ping-pong pipelined.
#[inline(always)]
// SAFETY: unsafe fn — `pa`/`panel` must cover `kk` k-steps at the given strides; the ping-pong loads below never exceed step `kk-1`.
unsafe fn rect_eliminate<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[V; NR]; MR],
    kk: usize,
    mut pa: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    panel: *const V::Scalar,
    row_stride: usize,
    col_stride: usize,
) {
    if kk == 0 {
        return;
    }
    if kk == 1 {
        let a0 = load_set::<V, MR>(pa, a_i);
        let x0 = load_set::<V, NR>(panel, col_stride);
        fms_tile(acc, &a0, &x0);
        return;
    }
    // Two-deep pipeline over the solved rows.
    let mut a0 = load_set::<V, MR>(pa, a_i);
    let mut a1 = load_set::<V, MR>(pa.add(a_k), a_i);
    pa = pa.add(2 * a_k);
    let mut x0 = load_set::<V, NR>(panel, col_stride);
    let mut x1 = load_set::<V, NR>(panel.add(row_stride), col_stride);
    let mut xrow = 2usize;
    fms_tile(acc, &a0, &x0);
    let mut remaining = kk - 1;
    while remaining >= 3 {
        a0 = load_set::<V, MR>(pa, a_i);
        x0 = load_set::<V, NR>(panel.add(xrow * row_stride), col_stride);
        pa = pa.add(a_k);
        xrow += 1;
        fms_tile(acc, &a1, &x1);
        a1 = load_set::<V, MR>(pa, a_i);
        x1 = load_set::<V, NR>(panel.add(xrow * row_stride), col_stride);
        pa = pa.add(a_k);
        xrow += 1;
        fms_tile(acc, &a0, &x0);
        remaining -= 2;
    }
    if remaining == 2 {
        a0 = load_set::<V, MR>(pa, a_i);
        x0 = load_set::<V, NR>(panel.add(xrow * row_stride), col_stride);
        fms_tile(acc, &a1, &x1);
        fms_tile(acc, &a0, &x0);
    } else {
        fms_tile(acc, &a1, &x1);
    }
}

/// Triangular register solve (Algorithm 4 body) on the loaded block.
#[inline(always)]
// SAFETY: unsafe fn — `pa_tri` must hold the packed triangle for MR rows (`MR·(MR+1)/2` vector groups); the walk below never leaves it.
unsafe fn tri_solve<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[V; NR]; MR],
    pa_tri: *const V::Scalar,
) {
    let p = V::LANES;
    let mut tri = pa_tri;
    for i in 0..MR {
        for j in 0..i {
            let lij = V::load(tri);
            tri = tri.add(p);
            for col in 0..NR {
                acc[i][col] = acc[i][col].fms(lij, acc[j][col]);
            }
        }
        let rdiag = V::load(tri);
        tri = tri.add(p);
        for col in 0..NR {
            acc[i][col] = acc[i][col].mul(rdiag);
        }
    }
}

/// Fused TRSM block kernel: rectangular elimination + triangular solve,
/// in place on the packed panel.
///
/// # Safety
/// `pa_rect` must cover `kk` strided slivers of `MR` groups, `pa_tri` the
/// packed `MR`-row triangle, and the panel rows `0..row0+MR` × `NR` columns.
#[inline(always)]
pub unsafe fn trsm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    kk: usize,
    pa_rect: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    pa_tri: *const V::Scalar,
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    prefetch_read(panel.add(row0 * row_stride));
    let mut acc = load_block::<V, MR, NR>(panel, row0, row_stride, col_stride);
    rect_eliminate::<V, MR, NR>(
        &mut acc, kk, pa_rect, a_i, a_k, panel, row_stride, col_stride,
    );
    tri_solve::<V, MR, NR>(&mut acc, pa_tri);
    store_block::<V, MR, NR>(&acc, panel, row0, row_stride, col_stride);
}

/// Rectangular-only TRSM kernel: `B[row0..row0+MR] -= Rect · X[0..kk]`.
///
/// # Safety
/// As [`trsm_ukr`], minus the triangle.
#[inline(always)]
pub unsafe fn trsm_rect_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    kk: usize,
    pa_rect: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    _pa_tri: *const V::Scalar,
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    let mut acc = load_block::<V, MR, NR>(panel, row0, row_stride, col_stride);
    rect_eliminate::<V, MR, NR>(
        &mut acc, kk, pa_rect, a_i, a_k, panel, row_stride, col_stride,
    );
    store_block::<V, MR, NR>(&acc, panel, row0, row_stride, col_stride);
}

// ---------------------------------------------------------------------------
// Complex kernels (split representation).
// ---------------------------------------------------------------------------

#[inline(always)]
// SAFETY: unsafe fn — `p` must be valid for the whole strided extent (`(N-1)*stride + LANES` scalars); each lane load stays inside it.
unsafe fn load_cset<V: SimdReal, const N: usize>(
    p: *const V::Scalar,
    stride: usize,
) -> [CVec<V>; N] {
    let mut out = [CVec::<V>::zero(); N];
    for (i, o) in out.iter_mut().enumerate() {
        *o = CVec::load(p.add(i * stride));
    }
    out
}

#[inline(always)]
fn cfms_tile<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[CVec<V>; NR]; MR],
    a: &[CVec<V>; MR],
    x: &[CVec<V>; NR],
) {
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] = acc[i][j].fms(a[i], x[j]);
        }
    }
}

/// Fused complex TRSM block kernel.
///
/// # Safety
/// As [`trsm_ukr`] with `2·P`-scalar element groups.
#[inline(always)]
pub unsafe fn ctrsm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    kk: usize,
    mut pa_rect: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    pa_tri: *const V::Scalar,
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    prefetch_read(panel.add(row0 * row_stride));
    let g = 2 * V::LANES;
    let mut acc = [[CVec::<V>::zero(); NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = CVec::load(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }

    // Rectangular phase (two-deep pipelined for kk ≥ 2).
    if kk == 1 {
        let a0 = load_cset::<V, MR>(pa_rect, a_i);
        let x0 = load_cset::<V, NR>(panel, col_stride);
        cfms_tile(&mut acc, &a0, &x0);
    } else if kk >= 2 {
        let mut a0 = load_cset::<V, MR>(pa_rect, a_i);
        let mut a1 = load_cset::<V, MR>(pa_rect.add(a_k), a_i);
        pa_rect = pa_rect.add(2 * a_k);
        let mut x0 = load_cset::<V, NR>(panel, col_stride);
        let mut x1 = load_cset::<V, NR>(panel.add(row_stride), col_stride);
        let mut xrow = 2usize;
        cfms_tile(&mut acc, &a0, &x0);
        let mut remaining = kk - 1;
        while remaining >= 3 {
            a0 = load_cset::<V, MR>(pa_rect, a_i);
            x0 = load_cset::<V, NR>(panel.add(xrow * row_stride), col_stride);
            pa_rect = pa_rect.add(a_k);
            xrow += 1;
            cfms_tile(&mut acc, &a1, &x1);
            a1 = load_cset::<V, MR>(pa_rect, a_i);
            x1 = load_cset::<V, NR>(panel.add(xrow * row_stride), col_stride);
            pa_rect = pa_rect.add(a_k);
            xrow += 1;
            cfms_tile(&mut acc, &a0, &x0);
            remaining -= 2;
        }
        if remaining == 2 {
            a0 = load_cset::<V, MR>(pa_rect, a_i);
            x0 = load_cset::<V, NR>(panel.add(xrow * row_stride), col_stride);
            cfms_tile(&mut acc, &a1, &x1);
            cfms_tile(&mut acc, &a0, &x0);
        } else {
            cfms_tile(&mut acc, &a1, &x1);
        }
    }

    // Triangular phase with complex reciprocal diagonal.
    let mut tri = pa_tri;
    for i in 0..MR {
        for j in 0..i {
            let lij = CVec::<V>::load(tri);
            tri = tri.add(g);
            for col in 0..NR {
                acc[i][col] = acc[i][col].fms(lij, acc[j][col]);
            }
        }
        let rdiag = CVec::<V>::load(tri);
        tri = tri.add(g);
        for col in 0..NR {
            acc[i][col] = CVec::zero().fma(acc[i][col], rdiag);
        }
    }

    for (i, row) in acc.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            cell.store(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
}

/// Rectangular-only complex TRSM kernel.
///
/// # Safety
/// As [`ctrsm_ukr`], minus the triangle.
#[inline(always)]
pub unsafe fn ctrsm_rect_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    kk: usize,
    pa_rect: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    _pa_tri: *const V::Scalar,
    panel: *mut V::Scalar,
    row0: usize,
    row_stride: usize,
    col_stride: usize,
) {
    let mut acc = [[CVec::<V>::zero(); NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = CVec::load(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
    // Reuse the simple path: complex rect elimination without pipelining
    // subtleties is still correct for the ablation's purposes.
    let mut pa = pa_rect;
    for k in 0..kk {
        let a = load_cset::<V, MR>(pa, a_i);
        let x = load_cset::<V, NR>(panel.add(k * row_stride), col_stride);
        cfms_tile(&mut acc, &a, &x);
        pa = pa.add(a_k);
    }
    for (i, row) in acc.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            cell.store(panel.add((row0 + i) * row_stride + j * col_stride));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{self, TestRng};
    use iatf_simd::{F32x4, F64x2, Real};

    /// Builds packed operands for one block solve and compares kernel vs
    /// oracle.
    fn check_real<V: SimdReal, const MR: usize, const NR: usize>(kk: usize) {
        let p = V::LANES;
        let rows = kk + MR;
        let mut rng = TestRng::new((MR * 41 + NR * 5 + kk) as u64);
        // rect: kk slivers of MR groups, small magnitudes
        let pa_rect: Vec<V::Scalar> = (0..kk * MR * p)
            .map(|_| V::Scalar::from_f64(rng.next() / rows as f64))
            .collect();
        // triangle rows with reciprocal diagonal in [1,2]^-1
        let tri_groups = MR * (MR + 1) / 2;
        let mut pa_tri = vec![V::Scalar::ZERO; tri_groups * p];
        for r in 0..MR {
            let base = r * (r + 1) / 2;
            for c in 0..=r {
                for l in 0..p {
                    let val = if c == r {
                        1.0 / (1.0 + 0.5 * ((r + l) % 3) as f64)
                    } else {
                        rng.next() / MR as f64
                    };
                    pa_tri[(base + c) * p + l] = V::Scalar::from_f64(val);
                }
            }
        }
        // panel: rows× NR groups, row-major
        let row_stride = NR * p;
        let panel0: Vec<V::Scalar> = (0..rows * NR * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let mut panel = panel0.clone();
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these (kk, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            trsm_ukr::<V, MR, NR>(
                kk,
                pa_rect.as_ptr(),
                p,
                MR * p,
                pa_tri.as_ptr(),
                panel.as_mut_ptr(),
                kk,
                row_stride,
                p,
            );
        }
        let rect_f: Vec<f64> = pa_rect.iter().map(|x| x.to_f64()).collect();
        let tri_f: Vec<f64> = pa_tri.iter().map(|x| x.to_f64()).collect();
        let panel_f: Vec<f64> = panel0.iter().map(|x| x.to_f64()).collect();
        let want =
            oracle::real_trsm_block(MR, NR, kk, p, &rect_f, &tri_f, &panel_f, kk, row_stride, p);
        let tol = if V::Scalar::BYTES == 4 { 1e-4 } else { 1e-12 };
        for (idx, (&got, &w)) in panel.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.to_f64() - w).abs() <= tol * w.abs().max(1.0),
                "real trsm {MR}x{NR} kk={kk} idx={idx}: {got} vs {w}"
            );
        }
    }

    #[test]
    fn real_blocks_match_oracle() {
        for kk in [0usize, 1, 2, 3, 4, 5, 8, 13] {
            check_real::<F64x2, 4, 4>(kk);
            check_real::<F64x2, 1, 4>(kk);
            check_real::<F64x2, 3, 2>(kk);
            check_real::<F32x4, 4, 4>(kk);
            check_real::<F32x4, 2, 1>(kk);
            check_real::<F32x4, 5, 4>(kk);
        }
    }

    #[test]
    fn m5_register_triangle() {
        // The M ≤ 5 full-register case of §4.2.2.
        check_real::<F64x2, 5, 1>(0);
        check_real::<F64x2, 5, 2>(0);
        check_real::<F32x4, 5, 3>(0);
    }

    #[test]
    fn rect_only_matches_oracle() {
        let p = F64x2::LANES;
        const MR: usize = 3;
        const NR: usize = 2;
        let kk = 4;
        let mut rng = TestRng::new(17);
        let pa_rect: Vec<f64> = (0..kk * MR * p).map(|_| rng.next()).collect();
        let row_stride = NR * p;
        let panel0: Vec<f64> = (0..(kk + MR) * NR * p).map(|_| rng.next()).collect();
        let mut panel = panel0.clone();
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these (kk, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            trsm_rect_ukr::<F64x2, MR, NR>(
                kk,
                pa_rect.as_ptr(),
                p,
                MR * p,
                core::ptr::null(),
                panel.as_mut_ptr(),
                kk,
                row_stride,
                p,
            );
        }
        // oracle: identity triangle (recip diag = 1, no off-diagonals)
        let mut tri = vec![0.0f64; MR * (MR + 1) / 2 * p];
        for r in 0..MR {
            let base = (r * (r + 1) / 2 + r) * p;
            for l in 0..p {
                tri[base + l] = 1.0;
            }
        }
        let want =
            oracle::real_trsm_block(MR, NR, kk, p, &pa_rect, &tri, &panel0, kk, row_stride, p);
        for (got, w) in panel.iter().zip(want.iter()) {
            assert!((got - w).abs() < 1e-12);
        }
    }

    fn check_cplx<V: SimdReal, const MR: usize, const NR: usize>(kk: usize) {
        let p = V::LANES;
        let g = 2 * p;
        let rows = kk + MR;
        let mut rng = TestRng::new((MR * 301 + NR * 11 + kk) as u64);
        let pa_rect: Vec<V::Scalar> = (0..kk * MR * g)
            .map(|_| V::Scalar::from_f64(rng.next() / rows as f64))
            .collect();
        let tri_groups = MR * (MR + 1) / 2;
        let mut pa_tri = vec![V::Scalar::ZERO; tri_groups * g];
        for r in 0..MR {
            let base = r * (r + 1) / 2;
            for c in 0..=r {
                for l in 0..p {
                    let (re, im) = if c == r {
                        // reciprocal of (d, 0.3) with d in [1,2]
                        let d = 1.0 + 0.4 * ((r + l) % 3) as f64;
                        let n = d * d + 0.09;
                        (d / n, -0.3 / n)
                    } else {
                        (rng.next() / MR as f64, rng.next() / MR as f64)
                    };
                    pa_tri[(base + c) * g + l] = V::Scalar::from_f64(re);
                    pa_tri[(base + c) * g + p + l] = V::Scalar::from_f64(im);
                }
            }
        }
        let row_stride = NR * g;
        let panel0: Vec<V::Scalar> = (0..rows * NR * g)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let mut panel = panel0.clone();
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these (kk, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            ctrsm_ukr::<V, MR, NR>(
                kk,
                pa_rect.as_ptr(),
                g,
                MR * g,
                pa_tri.as_ptr(),
                panel.as_mut_ptr(),
                kk,
                row_stride,
                g,
            );
        }
        let rect_f: Vec<f64> = pa_rect.iter().map(|x| x.to_f64()).collect();
        let tri_f: Vec<f64> = pa_tri.iter().map(|x| x.to_f64()).collect();
        let panel_f: Vec<f64> = panel0.iter().map(|x| x.to_f64()).collect();
        let want = oracle::cplx_trsm_block(
            MR, NR, kk, p, &rect_f, &tri_f, &panel_f, kk, row_stride, g,
        );
        let tol = if V::Scalar::BYTES == 4 { 1e-3 } else { 1e-11 };
        for (idx, (&got, &w)) in panel.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.to_f64() - w).abs() <= tol * w.abs().max(1.0),
                "cplx trsm {MR}x{NR} kk={kk} idx={idx}: {got} vs {w}"
            );
        }
    }

    #[test]
    fn complex_blocks_match_oracle() {
        for kk in [0usize, 1, 2, 3, 5, 7] {
            check_cplx::<F32x4, 2, 2>(kk);
            check_cplx::<F64x2, 2, 2>(kk);
            check_cplx::<F64x2, 1, 2>(kk);
            check_cplx::<F32x4, 2, 1>(kk);
            check_cplx::<F32x4, 1, 1>(kk);
        }
    }

    #[test]
    fn solves_actual_triangular_system() {
        // End-to-end on one pack: build L (lower, nonunit), pack triangle
        // with reciprocal diagonal, solve L·X = B for a 4×3 panel, then
        // verify the residual directly against L.
        let p = F64x2::LANES;
        const M: usize = 4;
        const NRP: usize = 3;
        let mut rng = TestRng::new(5);
        // L per lane
        let mut l = vec![0.0f64; M * M * p];
        for i in 0..M {
            for j in 0..=i {
                for lane in 0..p {
                    l[(i * M + j) * p + lane] = if i == j {
                        1.5 + 0.25 * lane as f64
                    } else {
                        rng.next()
                    };
                }
            }
        }
        // pack triangle rows with reciprocal diag
        let mut tri = vec![0.0f64; M * (M + 1) / 2 * p];
        for i in 0..M {
            let base = i * (i + 1) / 2;
            for j in 0..=i {
                for lane in 0..p {
                    let v = l[(i * M + j) * p + lane];
                    tri[(base + j) * p + lane] = if i == j { 1.0 / v } else { v };
                }
            }
        }
        let row_stride = NRP * p;
        let b0: Vec<f64> = (0..M * NRP * p).map(|_| rng.next()).collect();
        let mut panel = b0.clone();
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for these (kk, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            trsm_ukr::<F64x2, M, NRP>(
                0,
                core::ptr::null(),
                0,
                0,
                tri.as_ptr(),
                panel.as_mut_ptr(),
                0,
                row_stride,
                p,
            );
        }
        // residual: L · X == B
        for lane in 0..p {
            for col in 0..NRP {
                for i in 0..M {
                    let mut lhs = 0.0;
                    for j in 0..=i {
                        lhs += l[(i * M + j) * p + lane] * panel[j * row_stride + col * p + lane];
                    }
                    let rhs = b0[i * row_stride + col * p + lane];
                    assert!(
                        (lhs - rhs).abs() < 1e-12,
                        "lane {lane} col {col} row {i}: {lhs} vs {rhs}"
                    );
                }
            }
        }
    }
}
