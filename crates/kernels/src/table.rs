//! The generated-kernel inventory (paper Table 1) and dispatch tables.
//!
//! [`TABLE1`] lists exactly the kernels the paper reports generating; the
//! dispatch tables below hold the full monomorphized set (a superset on the
//! TRSM side: the paper's Table 1 lists only the full-width `n_r = 4`
//! rectangular kernels and relies on the register-resident triangular path
//! for the rest, while we also monomorphize the narrow panel tails).

use crate::gemm::{CplxGemmKernel, RealGemmKernel};
use crate::trmm::{CplxTrmmKernel, RealTrmmKernel};
use crate::trsm::{CplxTrsmKernel, CplxTrsmRectKernel, RealTrsmKernel, RealTrsmRectKernel};
use iatf_simd::{Real, VecWidth, F32x4, F64x2, S32x4, S64x2};

#[cfg(target_arch = "x86_64")]
use crate::wide::{avx2, avx512};
#[cfg(target_arch = "x86_64")]
use iatf_simd::{F32x16, F32x8, F64x4, F64x8};

/// Plain (baseline-ISA) kernel entry points, giving the table constructor
/// macro one module name per backend flavor.
mod plain {
    pub use crate::gemm::{cgemm_ukr, gemm_ukr};
    pub use crate::trmm::{ctrmm_ukr, trmm_ukr};
    pub use crate::trsm::{ctrsm_rect_ukr, ctrsm_ukr, trsm_rect_ukr, trsm_ukr};
}

/// Baseline entry points with the non-pipelined real GEMM body, used by the
/// scalar-width table so its registry row's `pipeline: false` is truthful
/// for the hot kernel (ping-pong double-buffering only pays for SIMD loads).
mod plain_nopipe {
    pub use crate::gemm::{cgemm_ukr, gemm_ukr_nopipeline as gemm_ukr};
    pub use crate::trmm::{ctrmm_ukr, trmm_ukr};
    pub use crate::trsm::{ctrsm_rect_ukr, ctrsm_ukr, trsm_rect_ukr, trsm_ukr};
}

/// Which kernel family a Table-1 row belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Real GEMM (sgemm/dgemm).
    RealGemm,
    /// Complex GEMM (cgemm/zgemm).
    CplxGemm,
    /// Real TRSM rectangular kernels (strsm/dtrsm).
    RealTrsm,
    /// Complex TRSM rectangular kernels (ctrsm/ztrsm).
    CplxTrsm,
}

/// One row of the kernel inventory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct KernelInfo {
    /// Kernel family.
    pub class: KernelClass,
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// True for the family's main (CMAR-optimal) kernel.
    pub main: bool,
}

const fn ki(class: KernelClass, mr: usize, nr: usize, main: bool) -> KernelInfo {
    KernelInfo {
        class,
        mr,
        nr,
        main,
    }
}

/// The paper's Table 1, row for row.
pub static TABLE1: &[KernelInfo] = &[
    // SGEMM / DGEMM: main 4×4, edges covering every m, n ∈ 1..=4.
    ki(KernelClass::RealGemm, 4, 4, true),
    ki(KernelClass::RealGemm, 4, 1, false),
    ki(KernelClass::RealGemm, 4, 2, false),
    ki(KernelClass::RealGemm, 4, 3, false),
    ki(KernelClass::RealGemm, 3, 1, false),
    ki(KernelClass::RealGemm, 3, 2, false),
    ki(KernelClass::RealGemm, 3, 3, false),
    ki(KernelClass::RealGemm, 3, 4, false),
    ki(KernelClass::RealGemm, 2, 1, false),
    ki(KernelClass::RealGemm, 2, 2, false),
    ki(KernelClass::RealGemm, 2, 3, false),
    ki(KernelClass::RealGemm, 2, 4, false),
    ki(KernelClass::RealGemm, 1, 1, false),
    ki(KernelClass::RealGemm, 1, 2, false),
    ki(KernelClass::RealGemm, 1, 3, false),
    ki(KernelClass::RealGemm, 1, 4, false),
    // CGEMM / ZGEMM: main 3×2, edges 3×1, 2×{1,2}, 1×{1,2}.
    ki(KernelClass::CplxGemm, 3, 2, true),
    ki(KernelClass::CplxGemm, 3, 1, false),
    ki(KernelClass::CplxGemm, 2, 1, false),
    ki(KernelClass::CplxGemm, 2, 2, false),
    ki(KernelClass::CplxGemm, 1, 1, false),
    ki(KernelClass::CplxGemm, 1, 2, false),
    // STRSM / DTRSM rectangular: 4×4 main, {3,2,1}×4 edges.
    ki(KernelClass::RealTrsm, 4, 4, true),
    ki(KernelClass::RealTrsm, 3, 4, false),
    ki(KernelClass::RealTrsm, 2, 4, false),
    ki(KernelClass::RealTrsm, 1, 4, false),
    // CTRSM / ZTRSM rectangular: 2×2 main, 1×2 edge.
    ki(KernelClass::CplxTrsm, 2, 2, true),
    ki(KernelClass::CplxTrsm, 1, 2, false),
];

/// Tile sizes `(m_r, n_r)` of every [`TABLE1`] row in `class`, in table
/// order — the enumeration surface exhaustive verification walks.
pub fn table1_sizes(class: KernelClass) -> Vec<(usize, usize)> {
    TABLE1
        .iter()
        .filter(|k| k.class == class)
        .map(|k| (k.mr, k.nr))
        .collect()
}

/// Largest register-resident triangular order (`RTRSM`'s `m_r = 5` row —
/// the §4.2.2 capacity bound).
pub const TRSM_TRI_MAX_M: usize = 5;

/// Largest fused real TRSM/TRMM block shape monomorphized in the dispatch
/// tables (`m_b, n_r ≤ 4`).
pub const FUSED_BLOCK_MAX: (usize, usize) = (4, 4);

/// The full monomorphized kernel set at one vector width.
///
/// All fields hold width-independent function-pointer types (the kernel
/// signatures only mention the scalar, never the vector), so the same
/// struct describes every backend; only the pointed-to monomorphizations
/// differ. Tile-shape *indices* are identical across widths — a wider
/// backend changes the lane count under each group, not the register
/// blocking — which keeps plan geometry width-invariant.
pub struct KernelTables<R> {
    /// Real GEMM kernels, indexed `[m_r − 1][n_r − 1]`, sizes 1..=4 each.
    pub rgemm: [[RealGemmKernel<R>; 4]; 4],
    /// Complex GEMM kernels, `m_r ∈ 1..=3`, `n_r ∈ 1..=2`.
    pub cgemm: [[CplxGemmKernel<R>; 2]; 3],
    /// Fused real TRSM block kernels, `m_r ∈ 1..=5`, `n_r ∈ 1..=4`.
    pub rtrsm: [[RealTrsmKernel<R>; 4]; 5],
    /// Fused complex TRSM block kernels, `m_r ∈ 1..=2`, `n_r ∈ 1..=2`.
    pub ctrsm: [[CplxTrsmKernel<R>; 2]; 2],
    /// Rect-only real TRSM kernels (Table 1's rectangular rows).
    pub rtrsm_rect: [[RealTrsmRectKernel<R>; 4]; 4],
    /// Rect-only complex TRSM kernels.
    pub ctrsm_rect: [[CplxTrsmRectKernel<R>; 2]; 2],
    /// Fused real TRMM block kernels (extension), `m_r, n_r ∈ 1..=4`.
    pub rtrmm: [[RealTrmmKernel<R>; 4]; 4],
    /// Fused complex TRMM block kernels (extension), `m_r, n_r ∈ 1..=2`.
    pub ctrmm: [[CplxTrmmKernel<R>; 2]; 2],
}

/// A real scalar for which the full kernel set is monomorphized at every
/// compiled-in vector width.
pub trait KernelScalar: Real {
    /// The kernel table at `width`.
    ///
    /// Total over all widths: on architectures where a wide backend is not
    /// compiled in (everything but `x86_64`), `W256`/`W512` return the
    /// 128-bit table — runtime dispatch never *selects* those widths there,
    /// but planners may still describe them. Tables for `W256`/`W512` on
    /// `x86_64` contain `#[target_feature]` entry points that are undefined
    /// behavior to call on hosts without the ISA; callers must check
    /// [`iatf_simd::width_available`] first (the registry does).
    fn tables(width: VecWidth) -> &'static KernelTables<Self>;
}

macro_rules! table_for {
    ($scalar:ty, $vec:ty, $m:ident) => {
        KernelTables::<$scalar> {
            rgemm: [
                [
                    $m::gemm_ukr::<$vec, 1, 1>,
                    $m::gemm_ukr::<$vec, 1, 2>,
                    $m::gemm_ukr::<$vec, 1, 3>,
                    $m::gemm_ukr::<$vec, 1, 4>,
                ],
                [
                    $m::gemm_ukr::<$vec, 2, 1>,
                    $m::gemm_ukr::<$vec, 2, 2>,
                    $m::gemm_ukr::<$vec, 2, 3>,
                    $m::gemm_ukr::<$vec, 2, 4>,
                ],
                [
                    $m::gemm_ukr::<$vec, 3, 1>,
                    $m::gemm_ukr::<$vec, 3, 2>,
                    $m::gemm_ukr::<$vec, 3, 3>,
                    $m::gemm_ukr::<$vec, 3, 4>,
                ],
                [
                    $m::gemm_ukr::<$vec, 4, 1>,
                    $m::gemm_ukr::<$vec, 4, 2>,
                    $m::gemm_ukr::<$vec, 4, 3>,
                    $m::gemm_ukr::<$vec, 4, 4>,
                ],
            ],
            cgemm: [
                [$m::cgemm_ukr::<$vec, 1, 1>, $m::cgemm_ukr::<$vec, 1, 2>],
                [$m::cgemm_ukr::<$vec, 2, 1>, $m::cgemm_ukr::<$vec, 2, 2>],
                [$m::cgemm_ukr::<$vec, 3, 1>, $m::cgemm_ukr::<$vec, 3, 2>],
            ],
            rtrsm: [
                [
                    $m::trsm_ukr::<$vec, 1, 1>,
                    $m::trsm_ukr::<$vec, 1, 2>,
                    $m::trsm_ukr::<$vec, 1, 3>,
                    $m::trsm_ukr::<$vec, 1, 4>,
                ],
                [
                    $m::trsm_ukr::<$vec, 2, 1>,
                    $m::trsm_ukr::<$vec, 2, 2>,
                    $m::trsm_ukr::<$vec, 2, 3>,
                    $m::trsm_ukr::<$vec, 2, 4>,
                ],
                [
                    $m::trsm_ukr::<$vec, 3, 1>,
                    $m::trsm_ukr::<$vec, 3, 2>,
                    $m::trsm_ukr::<$vec, 3, 3>,
                    $m::trsm_ukr::<$vec, 3, 4>,
                ],
                [
                    $m::trsm_ukr::<$vec, 4, 1>,
                    $m::trsm_ukr::<$vec, 4, 2>,
                    $m::trsm_ukr::<$vec, 4, 3>,
                    $m::trsm_ukr::<$vec, 4, 4>,
                ],
                [
                    $m::trsm_ukr::<$vec, 5, 1>,
                    $m::trsm_ukr::<$vec, 5, 2>,
                    $m::trsm_ukr::<$vec, 5, 3>,
                    $m::trsm_ukr::<$vec, 5, 4>,
                ],
            ],
            ctrsm: [
                [$m::ctrsm_ukr::<$vec, 1, 1>, $m::ctrsm_ukr::<$vec, 1, 2>],
                [$m::ctrsm_ukr::<$vec, 2, 1>, $m::ctrsm_ukr::<$vec, 2, 2>],
            ],
            rtrsm_rect: [
                [
                    $m::trsm_rect_ukr::<$vec, 1, 1>,
                    $m::trsm_rect_ukr::<$vec, 1, 2>,
                    $m::trsm_rect_ukr::<$vec, 1, 3>,
                    $m::trsm_rect_ukr::<$vec, 1, 4>,
                ],
                [
                    $m::trsm_rect_ukr::<$vec, 2, 1>,
                    $m::trsm_rect_ukr::<$vec, 2, 2>,
                    $m::trsm_rect_ukr::<$vec, 2, 3>,
                    $m::trsm_rect_ukr::<$vec, 2, 4>,
                ],
                [
                    $m::trsm_rect_ukr::<$vec, 3, 1>,
                    $m::trsm_rect_ukr::<$vec, 3, 2>,
                    $m::trsm_rect_ukr::<$vec, 3, 3>,
                    $m::trsm_rect_ukr::<$vec, 3, 4>,
                ],
                [
                    $m::trsm_rect_ukr::<$vec, 4, 1>,
                    $m::trsm_rect_ukr::<$vec, 4, 2>,
                    $m::trsm_rect_ukr::<$vec, 4, 3>,
                    $m::trsm_rect_ukr::<$vec, 4, 4>,
                ],
            ],
            ctrsm_rect: [
                [
                    $m::ctrsm_rect_ukr::<$vec, 1, 1>,
                    $m::ctrsm_rect_ukr::<$vec, 1, 2>,
                ],
                [
                    $m::ctrsm_rect_ukr::<$vec, 2, 1>,
                    $m::ctrsm_rect_ukr::<$vec, 2, 2>,
                ],
            ],
            rtrmm: [
                [
                    $m::trmm_ukr::<$vec, 1, 1>,
                    $m::trmm_ukr::<$vec, 1, 2>,
                    $m::trmm_ukr::<$vec, 1, 3>,
                    $m::trmm_ukr::<$vec, 1, 4>,
                ],
                [
                    $m::trmm_ukr::<$vec, 2, 1>,
                    $m::trmm_ukr::<$vec, 2, 2>,
                    $m::trmm_ukr::<$vec, 2, 3>,
                    $m::trmm_ukr::<$vec, 2, 4>,
                ],
                [
                    $m::trmm_ukr::<$vec, 3, 1>,
                    $m::trmm_ukr::<$vec, 3, 2>,
                    $m::trmm_ukr::<$vec, 3, 3>,
                    $m::trmm_ukr::<$vec, 3, 4>,
                ],
                [
                    $m::trmm_ukr::<$vec, 4, 1>,
                    $m::trmm_ukr::<$vec, 4, 2>,
                    $m::trmm_ukr::<$vec, 4, 3>,
                    $m::trmm_ukr::<$vec, 4, 4>,
                ],
            ],
            ctrmm: [
                [$m::ctrmm_ukr::<$vec, 1, 1>, $m::ctrmm_ukr::<$vec, 1, 2>],
                [$m::ctrmm_ukr::<$vec, 2, 1>, $m::ctrmm_ukr::<$vec, 2, 2>],
            ],
        }
    };
}

static F32_SCALAR: KernelTables<f32> = table_for!(f32, S32x4, plain_nopipe);
static F64_SCALAR: KernelTables<f64> = table_for!(f64, S64x2, plain_nopipe);
static F32_W128: KernelTables<f32> = table_for!(f32, F32x4, plain);
static F64_W128: KernelTables<f64> = table_for!(f64, F64x2, plain);
#[cfg(target_arch = "x86_64")]
static F32_W256: KernelTables<f32> = table_for!(f32, F32x8, avx2);
#[cfg(target_arch = "x86_64")]
static F64_W256: KernelTables<f64> = table_for!(f64, F64x4, avx2);
#[cfg(target_arch = "x86_64")]
static F32_W512: KernelTables<f32> = table_for!(f32, F32x16, avx512);
#[cfg(target_arch = "x86_64")]
static F64_W512: KernelTables<f64> = table_for!(f64, F64x8, avx512);

macro_rules! impl_kernel_scalar {
    ($scalar:ty, $scalar_tab:ident, $w128:ident, $w256:ident, $w512:ident) => {
        impl KernelScalar for $scalar {
            fn tables(width: VecWidth) -> &'static KernelTables<Self> {
                match width {
                    VecWidth::Scalar => &$scalar_tab,
                    VecWidth::W128 => &$w128,
                    #[cfg(target_arch = "x86_64")]
                    VecWidth::W256 => &$w256,
                    #[cfg(target_arch = "x86_64")]
                    VecWidth::W512 => &$w512,
                    // No wide backend compiled in: fall back to 128-bit
                    // monomorphizations (dispatch never selects these widths
                    // here, but planners may still describe them).
                    #[cfg(not(target_arch = "x86_64"))]
                    VecWidth::W256 | VecWidth::W512 => &$w128,
                }
            }
        }
    };
}

impl_kernel_scalar!(f32, F32_SCALAR, F32_W128, F32_W256, F32_W512);
impl_kernel_scalar!(f64, F64_SCALAR, F64_W128, F64_W256, F64_W512);

/// Fetches the real GEMM kernel at `width` for a tile size
/// (`m_r, n_r ∈ 1..=4`).
pub fn real_gemm_kernel<R: KernelScalar>(width: VecWidth, mr: usize, nr: usize) -> RealGemmKernel<R> {
    R::tables(width).rgemm[mr - 1][nr - 1]
}

/// Fetches the complex GEMM kernel at `width` (`m_r ∈ 1..=3`, `n_r ∈ 1..=2`).
pub fn cplx_gemm_kernel<R: KernelScalar>(width: VecWidth, mr: usize, nr: usize) -> CplxGemmKernel<R> {
    R::tables(width).cgemm[mr - 1][nr - 1]
}

/// Fetches the fused real TRSM block kernel at `width`
/// (`m_r ∈ 1..=5`, `n_r ∈ 1..=4`).
pub fn real_trsm_kernel<R: KernelScalar>(width: VecWidth, mr: usize, nr: usize) -> RealTrsmKernel<R> {
    R::tables(width).rtrsm[mr - 1][nr - 1]
}

/// Fetches the fused complex TRSM block kernel at `width`
/// (`m_r, n_r ∈ 1..=2`).
pub fn cplx_trsm_kernel<R: KernelScalar>(width: VecWidth, mr: usize, nr: usize) -> CplxTrsmKernel<R> {
    R::tables(width).ctrsm[mr - 1][nr - 1]
}

/// Fetches the rect-only real TRSM kernel at `width` (`m_r, n_r ∈ 1..=4`).
pub fn real_trsm_rect_kernel<R: KernelScalar>(
    width: VecWidth,
    mr: usize,
    nr: usize,
) -> RealTrsmRectKernel<R> {
    R::tables(width).rtrsm_rect[mr - 1][nr - 1]
}

/// Fetches the rect-only complex TRSM kernel at `width` (`m_r, n_r ∈ 1..=2`).
pub fn cplx_trsm_rect_kernel<R: KernelScalar>(
    width: VecWidth,
    mr: usize,
    nr: usize,
) -> CplxTrsmRectKernel<R> {
    R::tables(width).ctrsm_rect[mr - 1][nr - 1]
}

/// Fetches the fused real TRMM block kernel at `width` (`m_r, n_r ∈ 1..=4`).
pub fn real_trmm_kernel<R: KernelScalar>(width: VecWidth, mr: usize, nr: usize) -> RealTrmmKernel<R> {
    R::tables(width).rtrmm[mr - 1][nr - 1]
}

/// Fetches the fused complex TRMM block kernel at `width`
/// (`m_r, n_r ∈ 1..=2`).
pub fn cplx_trmm_kernel<R: KernelScalar>(width: VecWidth, mr: usize, nr: usize) -> CplxTrmmKernel<R> {
    R::tables(width).ctrmm[mr - 1][nr - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table1_row_counts_match_paper() {
        let count = |class: KernelClass| TABLE1.iter().filter(|k| k.class == class).count();
        assert_eq!(count(KernelClass::RealGemm), 16);
        assert_eq!(count(KernelClass::CplxGemm), 6);
        assert_eq!(count(KernelClass::RealTrsm), 4);
        assert_eq!(count(KernelClass::CplxTrsm), 2);
        assert_eq!(TABLE1.len(), 28);
    }

    #[test]
    fn exactly_one_main_kernel_per_family() {
        for class in [
            KernelClass::RealGemm,
            KernelClass::CplxGemm,
            KernelClass::RealTrsm,
            KernelClass::CplxTrsm,
        ] {
            let mains: Vec<_> = TABLE1
                .iter()
                .filter(|k| k.class == class && k.main)
                .collect();
            assert_eq!(mains.len(), 1, "{class:?}");
        }
        // and they are the paper's headline sizes
        let main = |class| {
            TABLE1
                .iter()
                .find(|k: &&KernelInfo| k.class == class && k.main)
                .unwrap()
        };
        assert_eq!(
            (main(KernelClass::RealGemm).mr, main(KernelClass::RealGemm).nr),
            (4, 4)
        );
        assert_eq!(
            (main(KernelClass::CplxGemm).mr, main(KernelClass::CplxGemm).nr),
            (3, 2)
        );
        assert_eq!(
            (main(KernelClass::RealTrsm).mr, main(KernelClass::RealTrsm).nr),
            (4, 4)
        );
        assert_eq!(
            (main(KernelClass::CplxTrsm).mr, main(KernelClass::CplxTrsm).nr),
            (2, 2)
        );
    }

    #[test]
    fn no_duplicate_rows() {
        let mut seen = HashSet::new();
        for k in TABLE1 {
            assert!(seen.insert((k.class, k.mr, k.nr)), "duplicate {k:?}");
        }
    }

    #[test]
    fn dispatch_tables_cover_table1() {
        // Fetching every Table-1 kernel must succeed for both precisions at
        // every width; within one width, distinct sizes must map to distinct
        // monomorphizations.
        for width in VecWidth::ALL {
            let mut f32_ptrs = HashSet::new();
            let mut f64_ptrs = HashSet::new();
            for k in TABLE1 {
                match k.class {
                    KernelClass::RealGemm => {
                        f32_ptrs.insert(real_gemm_kernel::<f32>(width, k.mr, k.nr) as usize);
                        f64_ptrs.insert(real_gemm_kernel::<f64>(width, k.mr, k.nr) as usize);
                    }
                    KernelClass::CplxGemm => {
                        f32_ptrs.insert(cplx_gemm_kernel::<f32>(width, k.mr, k.nr) as usize);
                        f64_ptrs.insert(cplx_gemm_kernel::<f64>(width, k.mr, k.nr) as usize);
                    }
                    KernelClass::RealTrsm => {
                        f32_ptrs.insert(real_trsm_rect_kernel::<f32>(width, k.mr, k.nr) as usize);
                        f64_ptrs.insert(real_trsm_rect_kernel::<f64>(width, k.mr, k.nr) as usize);
                    }
                    KernelClass::CplxTrsm => {
                        f32_ptrs.insert(cplx_trsm_rect_kernel::<f32>(width, k.mr, k.nr) as usize);
                        f64_ptrs.insert(cplx_trsm_rect_kernel::<f64>(width, k.mr, k.nr) as usize);
                    }
                }
            }
            assert_eq!(f32_ptrs.len(), TABLE1.len(), "{width:?}");
            assert_eq!(f64_ptrs.len(), TABLE1.len(), "{width:?}");
        }
    }

    #[test]
    fn widths_use_distinct_monomorphizations() {
        // Same (m_r, n_r), different width → different kernel body. On
        // non-x86_64 the wide widths alias the 128-bit table by design, so
        // only the always-compiled widths are asserted distinct.
        let a = real_gemm_kernel::<f32>(VecWidth::Scalar, 4, 4) as usize;
        let b = real_gemm_kernel::<f32>(VecWidth::W128, 4, 4) as usize;
        assert_ne!(a, b);
        #[cfg(target_arch = "x86_64")]
        {
            let c = real_gemm_kernel::<f32>(VecWidth::W256, 4, 4) as usize;
            let d = real_gemm_kernel::<f32>(VecWidth::W512, 4, 4) as usize;
            let all: HashSet<usize> = [a, b, c, d].into_iter().collect();
            assert_eq!(all.len(), 4);
        }
    }

    #[test]
    fn fused_trsm_covers_register_limit() {
        // m_r = 5 is the register-capacity bound of §4.2.2.
        let _ = real_trsm_kernel::<f64>(VecWidth::W128, 5, 4);
        let _ = real_trsm_kernel::<f32>(VecWidth::W128, 5, 1);
        let _ = cplx_trsm_kernel::<f64>(VecWidth::W128, 2, 2);
    }
}
