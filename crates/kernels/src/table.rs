//! The generated-kernel inventory (paper Table 1) and dispatch tables.
//!
//! [`TABLE1`] lists exactly the kernels the paper reports generating; the
//! dispatch tables below hold the full monomorphized set (a superset on the
//! TRSM side: the paper's Table 1 lists only the full-width `n_r = 4`
//! rectangular kernels and relies on the register-resident triangular path
//! for the rest, while we also monomorphize the narrow panel tails).

use crate::gemm::{cgemm_ukr, gemm_ukr, CplxGemmKernel, RealGemmKernel};
use crate::trmm::{ctrmm_ukr, trmm_ukr, CplxTrmmKernel, RealTrmmKernel};
use crate::trsm::{
    ctrsm_rect_ukr, ctrsm_ukr, trsm_rect_ukr, trsm_ukr, CplxTrsmKernel, CplxTrsmRectKernel,
    RealTrsmKernel, RealTrsmRectKernel,
};
use iatf_simd::{F32x4, F64x2, Real};

/// Which kernel family a Table-1 row belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Real GEMM (sgemm/dgemm).
    RealGemm,
    /// Complex GEMM (cgemm/zgemm).
    CplxGemm,
    /// Real TRSM rectangular kernels (strsm/dtrsm).
    RealTrsm,
    /// Complex TRSM rectangular kernels (ctrsm/ztrsm).
    CplxTrsm,
}

/// One row of the kernel inventory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct KernelInfo {
    /// Kernel family.
    pub class: KernelClass,
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// True for the family's main (CMAR-optimal) kernel.
    pub main: bool,
}

const fn ki(class: KernelClass, mr: usize, nr: usize, main: bool) -> KernelInfo {
    KernelInfo {
        class,
        mr,
        nr,
        main,
    }
}

/// The paper's Table 1, row for row.
pub static TABLE1: &[KernelInfo] = &[
    // SGEMM / DGEMM: main 4×4, edges covering every m, n ∈ 1..=4.
    ki(KernelClass::RealGemm, 4, 4, true),
    ki(KernelClass::RealGemm, 4, 1, false),
    ki(KernelClass::RealGemm, 4, 2, false),
    ki(KernelClass::RealGemm, 4, 3, false),
    ki(KernelClass::RealGemm, 3, 1, false),
    ki(KernelClass::RealGemm, 3, 2, false),
    ki(KernelClass::RealGemm, 3, 3, false),
    ki(KernelClass::RealGemm, 3, 4, false),
    ki(KernelClass::RealGemm, 2, 1, false),
    ki(KernelClass::RealGemm, 2, 2, false),
    ki(KernelClass::RealGemm, 2, 3, false),
    ki(KernelClass::RealGemm, 2, 4, false),
    ki(KernelClass::RealGemm, 1, 1, false),
    ki(KernelClass::RealGemm, 1, 2, false),
    ki(KernelClass::RealGemm, 1, 3, false),
    ki(KernelClass::RealGemm, 1, 4, false),
    // CGEMM / ZGEMM: main 3×2, edges 3×1, 2×{1,2}, 1×{1,2}.
    ki(KernelClass::CplxGemm, 3, 2, true),
    ki(KernelClass::CplxGemm, 3, 1, false),
    ki(KernelClass::CplxGemm, 2, 1, false),
    ki(KernelClass::CplxGemm, 2, 2, false),
    ki(KernelClass::CplxGemm, 1, 1, false),
    ki(KernelClass::CplxGemm, 1, 2, false),
    // STRSM / DTRSM rectangular: 4×4 main, {3,2,1}×4 edges.
    ki(KernelClass::RealTrsm, 4, 4, true),
    ki(KernelClass::RealTrsm, 3, 4, false),
    ki(KernelClass::RealTrsm, 2, 4, false),
    ki(KernelClass::RealTrsm, 1, 4, false),
    // CTRSM / ZTRSM rectangular: 2×2 main, 1×2 edge.
    ki(KernelClass::CplxTrsm, 2, 2, true),
    ki(KernelClass::CplxTrsm, 1, 2, false),
];

/// Tile sizes `(m_r, n_r)` of every [`TABLE1`] row in `class`, in table
/// order — the enumeration surface exhaustive verification walks.
pub fn table1_sizes(class: KernelClass) -> Vec<(usize, usize)> {
    TABLE1
        .iter()
        .filter(|k| k.class == class)
        .map(|k| (k.mr, k.nr))
        .collect()
}

/// Largest register-resident triangular order (`RTRSM`'s `m_r = 5` row —
/// the §4.2.2 capacity bound).
pub const TRSM_TRI_MAX_M: usize = 5;

/// Largest fused real TRSM/TRMM block shape monomorphized in the dispatch
/// tables (`m_b, n_r ≤ 4`).
pub const FUSED_BLOCK_MAX: (usize, usize) = (4, 4);

/// A real scalar for which the full kernel set is monomorphized.
pub trait KernelScalar: Real {
    /// Real GEMM kernels, indexed `[m_r − 1][n_r − 1]`, sizes 1..=4 each.
    const RGEMM: [[RealGemmKernel<Self>; 4]; 4];
    /// Complex GEMM kernels, `m_r ∈ 1..=3`, `n_r ∈ 1..=2`.
    const CGEMM: [[CplxGemmKernel<Self>; 2]; 3];
    /// Fused real TRSM block kernels, `m_r ∈ 1..=5`, `n_r ∈ 1..=4`.
    const RTRSM: [[RealTrsmKernel<Self>; 4]; 5];
    /// Fused complex TRSM block kernels, `m_r ∈ 1..=2`, `n_r ∈ 1..=2`.
    const CTRSM: [[CplxTrsmKernel<Self>; 2]; 2];
    /// Rect-only real TRSM kernels (Table 1's rectangular rows).
    const RTRSM_RECT: [[RealTrsmRectKernel<Self>; 4]; 4];
    /// Rect-only complex TRSM kernels.
    const CTRSM_RECT: [[CplxTrsmRectKernel<Self>; 2]; 2];
    /// Fused real TRMM block kernels (extension), `m_r, n_r ∈ 1..=4`.
    const RTRMM: [[RealTrmmKernel<Self>; 4]; 4];
    /// Fused complex TRMM block kernels (extension), `m_r, n_r ∈ 1..=2`.
    const CTRMM: [[CplxTrmmKernel<Self>; 2]; 2];
}

macro_rules! kernel_tables {
    ($scalar:ty, $vec:ty) => {
        impl KernelScalar for $scalar {
            const RGEMM: [[RealGemmKernel<$scalar>; 4]; 4] = [
                [
                    gemm_ukr::<$vec, 1, 1>,
                    gemm_ukr::<$vec, 1, 2>,
                    gemm_ukr::<$vec, 1, 3>,
                    gemm_ukr::<$vec, 1, 4>,
                ],
                [
                    gemm_ukr::<$vec, 2, 1>,
                    gemm_ukr::<$vec, 2, 2>,
                    gemm_ukr::<$vec, 2, 3>,
                    gemm_ukr::<$vec, 2, 4>,
                ],
                [
                    gemm_ukr::<$vec, 3, 1>,
                    gemm_ukr::<$vec, 3, 2>,
                    gemm_ukr::<$vec, 3, 3>,
                    gemm_ukr::<$vec, 3, 4>,
                ],
                [
                    gemm_ukr::<$vec, 4, 1>,
                    gemm_ukr::<$vec, 4, 2>,
                    gemm_ukr::<$vec, 4, 3>,
                    gemm_ukr::<$vec, 4, 4>,
                ],
            ];
            const CGEMM: [[CplxGemmKernel<$scalar>; 2]; 3] = [
                [cgemm_ukr::<$vec, 1, 1>, cgemm_ukr::<$vec, 1, 2>],
                [cgemm_ukr::<$vec, 2, 1>, cgemm_ukr::<$vec, 2, 2>],
                [cgemm_ukr::<$vec, 3, 1>, cgemm_ukr::<$vec, 3, 2>],
            ];
            const RTRSM: [[RealTrsmKernel<$scalar>; 4]; 5] = [
                [
                    trsm_ukr::<$vec, 1, 1>,
                    trsm_ukr::<$vec, 1, 2>,
                    trsm_ukr::<$vec, 1, 3>,
                    trsm_ukr::<$vec, 1, 4>,
                ],
                [
                    trsm_ukr::<$vec, 2, 1>,
                    trsm_ukr::<$vec, 2, 2>,
                    trsm_ukr::<$vec, 2, 3>,
                    trsm_ukr::<$vec, 2, 4>,
                ],
                [
                    trsm_ukr::<$vec, 3, 1>,
                    trsm_ukr::<$vec, 3, 2>,
                    trsm_ukr::<$vec, 3, 3>,
                    trsm_ukr::<$vec, 3, 4>,
                ],
                [
                    trsm_ukr::<$vec, 4, 1>,
                    trsm_ukr::<$vec, 4, 2>,
                    trsm_ukr::<$vec, 4, 3>,
                    trsm_ukr::<$vec, 4, 4>,
                ],
                [
                    trsm_ukr::<$vec, 5, 1>,
                    trsm_ukr::<$vec, 5, 2>,
                    trsm_ukr::<$vec, 5, 3>,
                    trsm_ukr::<$vec, 5, 4>,
                ],
            ];
            const CTRSM: [[CplxTrsmKernel<$scalar>; 2]; 2] = [
                [ctrsm_ukr::<$vec, 1, 1>, ctrsm_ukr::<$vec, 1, 2>],
                [ctrsm_ukr::<$vec, 2, 1>, ctrsm_ukr::<$vec, 2, 2>],
            ];
            const RTRSM_RECT: [[RealTrsmRectKernel<$scalar>; 4]; 4] = [
                [
                    trsm_rect_ukr::<$vec, 1, 1>,
                    trsm_rect_ukr::<$vec, 1, 2>,
                    trsm_rect_ukr::<$vec, 1, 3>,
                    trsm_rect_ukr::<$vec, 1, 4>,
                ],
                [
                    trsm_rect_ukr::<$vec, 2, 1>,
                    trsm_rect_ukr::<$vec, 2, 2>,
                    trsm_rect_ukr::<$vec, 2, 3>,
                    trsm_rect_ukr::<$vec, 2, 4>,
                ],
                [
                    trsm_rect_ukr::<$vec, 3, 1>,
                    trsm_rect_ukr::<$vec, 3, 2>,
                    trsm_rect_ukr::<$vec, 3, 3>,
                    trsm_rect_ukr::<$vec, 3, 4>,
                ],
                [
                    trsm_rect_ukr::<$vec, 4, 1>,
                    trsm_rect_ukr::<$vec, 4, 2>,
                    trsm_rect_ukr::<$vec, 4, 3>,
                    trsm_rect_ukr::<$vec, 4, 4>,
                ],
            ];
            const CTRSM_RECT: [[CplxTrsmRectKernel<$scalar>; 2]; 2] = [
                [ctrsm_rect_ukr::<$vec, 1, 1>, ctrsm_rect_ukr::<$vec, 1, 2>],
                [ctrsm_rect_ukr::<$vec, 2, 1>, ctrsm_rect_ukr::<$vec, 2, 2>],
            ];
            const RTRMM: [[RealTrmmKernel<$scalar>; 4]; 4] = [
                [
                    trmm_ukr::<$vec, 1, 1>,
                    trmm_ukr::<$vec, 1, 2>,
                    trmm_ukr::<$vec, 1, 3>,
                    trmm_ukr::<$vec, 1, 4>,
                ],
                [
                    trmm_ukr::<$vec, 2, 1>,
                    trmm_ukr::<$vec, 2, 2>,
                    trmm_ukr::<$vec, 2, 3>,
                    trmm_ukr::<$vec, 2, 4>,
                ],
                [
                    trmm_ukr::<$vec, 3, 1>,
                    trmm_ukr::<$vec, 3, 2>,
                    trmm_ukr::<$vec, 3, 3>,
                    trmm_ukr::<$vec, 3, 4>,
                ],
                [
                    trmm_ukr::<$vec, 4, 1>,
                    trmm_ukr::<$vec, 4, 2>,
                    trmm_ukr::<$vec, 4, 3>,
                    trmm_ukr::<$vec, 4, 4>,
                ],
            ];
            const CTRMM: [[CplxTrmmKernel<$scalar>; 2]; 2] = [
                [ctrmm_ukr::<$vec, 1, 1>, ctrmm_ukr::<$vec, 1, 2>],
                [ctrmm_ukr::<$vec, 2, 1>, ctrmm_ukr::<$vec, 2, 2>],
            ];
        }
    };
}

kernel_tables!(f32, F32x4);
kernel_tables!(f64, F64x2);

/// Fetches the real GEMM kernel for a tile size (`m_r, n_r ∈ 1..=4`).
pub fn real_gemm_kernel<R: KernelScalar>(mr: usize, nr: usize) -> RealGemmKernel<R> {
    R::RGEMM[mr - 1][nr - 1]
}

/// Fetches the complex GEMM kernel (`m_r ∈ 1..=3`, `n_r ∈ 1..=2`).
pub fn cplx_gemm_kernel<R: KernelScalar>(mr: usize, nr: usize) -> CplxGemmKernel<R> {
    R::CGEMM[mr - 1][nr - 1]
}

/// Fetches the fused real TRSM block kernel (`m_r ∈ 1..=5`, `n_r ∈ 1..=4`).
pub fn real_trsm_kernel<R: KernelScalar>(mr: usize, nr: usize) -> RealTrsmKernel<R> {
    R::RTRSM[mr - 1][nr - 1]
}

/// Fetches the fused complex TRSM block kernel (`m_r, n_r ∈ 1..=2`).
pub fn cplx_trsm_kernel<R: KernelScalar>(mr: usize, nr: usize) -> CplxTrsmKernel<R> {
    R::CTRSM[mr - 1][nr - 1]
}

/// Fetches the rect-only real TRSM kernel (`m_r, n_r ∈ 1..=4`).
pub fn real_trsm_rect_kernel<R: KernelScalar>(mr: usize, nr: usize) -> RealTrsmRectKernel<R> {
    R::RTRSM_RECT[mr - 1][nr - 1]
}

/// Fetches the rect-only complex TRSM kernel (`m_r, n_r ∈ 1..=2`).
pub fn cplx_trsm_rect_kernel<R: KernelScalar>(mr: usize, nr: usize) -> CplxTrsmRectKernel<R> {
    R::CTRSM_RECT[mr - 1][nr - 1]
}

/// Fetches the fused real TRMM block kernel (`m_r, n_r ∈ 1..=4`).
pub fn real_trmm_kernel<R: KernelScalar>(mr: usize, nr: usize) -> RealTrmmKernel<R> {
    R::RTRMM[mr - 1][nr - 1]
}

/// Fetches the fused complex TRMM block kernel (`m_r, n_r ∈ 1..=2`).
pub fn cplx_trmm_kernel<R: KernelScalar>(mr: usize, nr: usize) -> CplxTrmmKernel<R> {
    R::CTRMM[mr - 1][nr - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table1_row_counts_match_paper() {
        let count = |class: KernelClass| TABLE1.iter().filter(|k| k.class == class).count();
        assert_eq!(count(KernelClass::RealGemm), 16);
        assert_eq!(count(KernelClass::CplxGemm), 6);
        assert_eq!(count(KernelClass::RealTrsm), 4);
        assert_eq!(count(KernelClass::CplxTrsm), 2);
        assert_eq!(TABLE1.len(), 28);
    }

    #[test]
    fn exactly_one_main_kernel_per_family() {
        for class in [
            KernelClass::RealGemm,
            KernelClass::CplxGemm,
            KernelClass::RealTrsm,
            KernelClass::CplxTrsm,
        ] {
            let mains: Vec<_> = TABLE1
                .iter()
                .filter(|k| k.class == class && k.main)
                .collect();
            assert_eq!(mains.len(), 1, "{class:?}");
        }
        // and they are the paper's headline sizes
        let main = |class| {
            TABLE1
                .iter()
                .find(|k: &&KernelInfo| k.class == class && k.main)
                .unwrap()
        };
        assert_eq!(
            (main(KernelClass::RealGemm).mr, main(KernelClass::RealGemm).nr),
            (4, 4)
        );
        assert_eq!(
            (main(KernelClass::CplxGemm).mr, main(KernelClass::CplxGemm).nr),
            (3, 2)
        );
        assert_eq!(
            (main(KernelClass::RealTrsm).mr, main(KernelClass::RealTrsm).nr),
            (4, 4)
        );
        assert_eq!(
            (main(KernelClass::CplxTrsm).mr, main(KernelClass::CplxTrsm).nr),
            (2, 2)
        );
    }

    #[test]
    fn no_duplicate_rows() {
        let mut seen = HashSet::new();
        for k in TABLE1 {
            assert!(seen.insert((k.class, k.mr, k.nr)), "duplicate {k:?}");
        }
    }

    #[test]
    fn dispatch_tables_cover_table1() {
        // Fetching every Table-1 kernel must succeed for both precisions;
        // distinct sizes must map to distinct monomorphizations.
        let mut f32_ptrs = HashSet::new();
        let mut f64_ptrs = HashSet::new();
        for k in TABLE1 {
            match k.class {
                KernelClass::RealGemm => {
                    f32_ptrs.insert(real_gemm_kernel::<f32>(k.mr, k.nr) as usize);
                    f64_ptrs.insert(real_gemm_kernel::<f64>(k.mr, k.nr) as usize);
                }
                KernelClass::CplxGemm => {
                    f32_ptrs.insert(cplx_gemm_kernel::<f32>(k.mr, k.nr) as usize);
                    f64_ptrs.insert(cplx_gemm_kernel::<f64>(k.mr, k.nr) as usize);
                }
                KernelClass::RealTrsm => {
                    f32_ptrs.insert(real_trsm_rect_kernel::<f32>(k.mr, k.nr) as usize);
                    f64_ptrs.insert(real_trsm_rect_kernel::<f64>(k.mr, k.nr) as usize);
                }
                KernelClass::CplxTrsm => {
                    f32_ptrs.insert(cplx_trsm_rect_kernel::<f32>(k.mr, k.nr) as usize);
                    f64_ptrs.insert(cplx_trsm_rect_kernel::<f64>(k.mr, k.nr) as usize);
                }
            }
        }
        assert_eq!(f32_ptrs.len(), TABLE1.len());
        assert_eq!(f64_ptrs.len(), TABLE1.len());
    }

    #[test]
    fn fused_trsm_covers_register_limit() {
        // m_r = 5 is the register-capacity bound of §4.2.2.
        let _ = real_trsm_kernel::<f64>(5, 4);
        let _ = real_trsm_kernel::<f32>(5, 1);
        let _ = cplx_trsm_kernel::<f64>(2, 2);
    }
}
