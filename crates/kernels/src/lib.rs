//! Computing kernels for the SIMD-friendly compact layout.
//!
//! This crate is the run-time realization of the paper's *install-time
//! stage* kernel set (§4.2, Table 1): every GEMM and TRSM microkernel size
//! the Computing Kernel Designer generates, implemented as monomorphized
//! Rust functions over the 128-bit SIMD abstraction. The structural model of
//! the paper's assembly generation — the six templates, Algorithm 3's
//! sequencing, and the instruction scheduling passes — lives in
//! `iatf-codegen`; the kernels here follow the same ping-pong two-deep
//! software pipeline so the two paths are semantically interchangeable
//! (asserted by cross-tests in `iatf-codegen`).
//!
//! # Kernel anatomy (paper Algorithm 2)
//!
//! A GEMM microkernel updates a `P × m_r × n_r` tile of C with the product of
//! a `P × m_r × K` sliver of A and a `P × K × n_r` sliver of B, where `P` is
//! the interleaving factor (lanes). Two register sets for A and B alternate
//! ("ping-pong"): while one set feeds the FMAs of step `k`, the other is
//! being loaded with step `k+1`, so loads never stall the FMA pipeline.
//!
//! All operand addressing is strided, which lets the same kernel body serve
//! both the packed path (unit-stride panels produced by `iatf-pack`) and the
//! paper's *no-pack* fast path (§4.4) where the kernel streams straight out
//! of the compact layout.
//!
//! # Sizes (paper Table 1)
//!
//! | | main | generated set |
//! |---|---|---|
//! | real GEMM | 4×4 | m_r ∈ 1..=4, n_r ∈ 1..=4 |
//! | complex GEMM | 3×2 | m_r ∈ 1..=3, n_r ∈ 1..=2 |
//! | real TRSM | 4×4 | m_r ∈ 1..=5 (triangle), n_r ∈ 1..=4 |
//! | complex TRSM | 2×2 | m_r ∈ 1..=2, n_r ∈ 1..=2 |
//!
//! The real-TRSM triangle goes up to `m_r = 5` because with the whole
//! triangle register-resident the constraint is `M(M+1)/2 + 2M ≤ 32` → `M ≤ 5`
//! (paper §4.2.2).

#![warn(missing_docs)]
// Indexed loops over fixed-size register arrays mirror the generated-
// assembly structure and unroll identically; BLAS kernel signatures are
// inherently wide.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments, clippy::manual_is_multiple_of)]

pub mod gemm;
pub mod oracle;
pub mod registry;
pub mod table;
pub mod trmm;
pub mod trsm;
pub mod wide;

pub use gemm::{cgemm_ukr, gemm_ukr, gemm_ukr_nopipeline, CplxGemmKernel, RealGemmKernel};
pub use registry::{dispatched_row, row_for, rows, KernelRegistryRow, COMPILED_ROWS};
pub use table::{
    cplx_gemm_kernel, cplx_trsm_kernel, cplx_trsm_rect_kernel, real_gemm_kernel, real_trsm_kernel,
    real_trsm_rect_kernel, table1_sizes, KernelClass, KernelInfo, KernelScalar, KernelTables,
    FUSED_BLOCK_MAX, TABLE1, TRSM_TRI_MAX_M,
};
pub use trmm::{ctrmm_ukr, trmm_ukr, CplxTrmmKernel, RealTrmmKernel};
pub use trsm::{
    ctrsm_rect_ukr, ctrsm_ukr, trsm_rect_ukr, trsm_ukr, CplxTrsmKernel, CplxTrsmRectKernel,
    RealTrsmKernel, RealTrsmRectKernel,
};
