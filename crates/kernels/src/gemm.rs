//! GEMM microkernels (paper §4.2.1, Algorithm 2/3).
//!
//! `gemm_ukr` is the real-element kernel, `cgemm_ukr` the split-complex one.
//! Both compute, for one pack of `P` matrices,
//!
//! ```text
//! C[0..m_r, 0..n_r] = alpha · A[0..m_r, 0..K] · B[0..K, 0..n_r] + beta · C
//! ```
//!
//! with every element being a `P`-wide vector group. The K loop is software
//! pipelined two deep ("ping-pong"): register set 0 and set 1 alternate
//! between *being computed with* and *being loaded into*, the direct
//! translation of the paper's `I / M1 / M2 / E / SUB` templates.

use iatf_simd::{prefetch_read, CVec, Real, SimdReal};

/// Function-pointer type of a monomorphized real GEMM microkernel.
///
/// Strides are in scalars. A sliver addressing: the vector for row `i` of
/// K-step `k` is at `pa + k·a_k + i·a_i`; B: column `j` of step `k` at
/// `pb + k·b_k + j·b_j`. C: element group `(i, j)` at `c + i·c_i + j·c_j`.
/// Packed panels use `a_i = P, a_k = m_r·P` / `b_j = P, b_k = n_r·P`; the
/// no-pack path passes the compact layout's native strides instead.
// SAFETY: unsafe fn type — callers must pass pointers valid for the full sliver-addressed extent implied by (k, strides) as documented above.
pub type RealGemmKernel<R> = unsafe fn(
    k: usize,
    alpha: R,
    beta: R,
    pa: *const R,
    a_i: usize,
    a_k: usize,
    pb: *const R,
    b_j: usize,
    b_k: usize,
    c: *mut R,
    c_i: usize,
    c_j: usize,
);

/// Function-pointer type of a monomorphized complex GEMM microkernel.
///
/// Identical addressing, but every "element group" is `2·P` scalars (split
/// re/im) and `alpha`/`beta` are `[re, im]` pairs.
// SAFETY: unsafe fn type — callers must pass pointers valid for the full sliver-addressed extent implied by (k, strides) as documented above.
pub type CplxGemmKernel<R> = unsafe fn(
    k: usize,
    alpha: [R; 2],
    beta: [R; 2],
    pa: *const R,
    a_i: usize,
    a_k: usize,
    pb: *const R,
    b_j: usize,
    b_k: usize,
    c: *mut R,
    c_i: usize,
    c_j: usize,
);

#[inline(always)]
// SAFETY: unsafe fn — `p` must be valid for the whole strided extent (`(N-1)*stride + LANES` scalars); each lane load stays inside it.
unsafe fn load_set<V: SimdReal, const N: usize>(p: *const V::Scalar, stride: usize) -> [V; N] {
    let mut out = [V::zero(); N];
    for (i, o) in out.iter_mut().enumerate() {
        *o = V::load(p.add(i * stride));
    }
    out
}

#[inline(always)]
fn fma_tile<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[V; NR]; MR],
    a: &[V; MR],
    b: &[V; NR],
) {
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] = acc[i][j].fma(a[i], b[j]);
        }
    }
}

#[inline(always)]
fn fmul_tile<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[V; NR]; MR],
    a: &[V; MR],
    b: &[V; NR],
) {
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] = a[i].mul(b[j]);
        }
    }
}

/// Real GEMM microkernel, generic over vector type and tile size.
///
/// Monomorphize via [`crate::table::real_gemm_kernel`] or directly:
/// `gemm_ukr::<F32x4, 4, 4>` is the paper's main SGEMM kernel.
///
/// # Safety
/// All pointers must be valid for the strided region the tile covers:
/// `k` A-slivers of `MR` vectors, `k` B-slivers of `NR` vectors, and an
/// `MR × NR` tile of `P`-wide C groups.
#[inline(always)]
pub unsafe fn gemm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    k: usize,
    alpha: V::Scalar,
    beta: V::Scalar,
    mut pa: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    mut pb: *const V::Scalar,
    b_j: usize,
    b_k: usize,
    c: *mut V::Scalar,
    c_i: usize,
    c_j: usize,
) {
    // A and B slivers are already resident in L1 after packing; C is not
    // (paper §4.3) — prefetch its first and last column.
    prefetch_read(c);
    prefetch_read(c.add((NR - 1) * c_j));

    let mut acc = [[V::zero(); NR]; MR];

    if k == 1 {
        // TEMPLATE_SUB on an empty accumulator (Algorithm 3, K == 1 arm).
        let a0 = load_set::<V, MR>(pa, a_i);
        let b0 = load_set::<V, NR>(pb, b_j);
        fmul_tile(&mut acc, &a0, &b0);
    } else if k >= 2 {
        // TEMPLATE_I: load both register sets (steps 0 and 1), compute step
        // 0 with FMUL so nothing depends on a zeroed accumulator.
        let mut a0 = load_set::<V, MR>(pa, a_i);
        let mut a1 = load_set::<V, MR>(pa.add(a_k), a_i);
        pa = pa.add(2 * a_k);
        let mut b0 = load_set::<V, NR>(pb, b_j);
        let mut b1 = load_set::<V, NR>(pb.add(b_k), b_j);
        pb = pb.add(2 * b_k);
        fmul_tile(&mut acc, &a0, &b0);

        // Steps 1..k remain; set 1 holds step 1. Each M2/M1 computes one
        // step and loads the step after next into the idle set. (The paper's
        // Algorithm 3 sequences the same templates; its printed tail
        // dispatch has an off-by-one — a literal reading loads one sliver
        // past the panel for odd K ≥ 5 — which this loop corrects while
        // keeping the two-deep pipeline.)
        let mut remaining = k - 1;
        while remaining >= 3 {
            // TEMPLATE_M2: load set 0, compute set 1.
            a0 = load_set::<V, MR>(pa, a_i);
            b0 = load_set::<V, NR>(pb, b_j);
            pa = pa.add(a_k);
            pb = pb.add(b_k);
            fma_tile(&mut acc, &a1, &b1);
            // TEMPLATE_M1: load set 1, compute set 0.
            a1 = load_set::<V, MR>(pa, a_i);
            b1 = load_set::<V, NR>(pb, b_j);
            pa = pa.add(a_k);
            pb = pb.add(b_k);
            fma_tile(&mut acc, &a0, &b0);
            remaining -= 2;
        }
        if remaining == 2 {
            // TEMPLATE_M2 then a compute-only exit on set 0.
            a0 = load_set::<V, MR>(pa, a_i);
            b0 = load_set::<V, NR>(pb, b_j);
            fma_tile(&mut acc, &a1, &b1);
            fma_tile(&mut acc, &a0, &b0);
        } else {
            // TEMPLATE_E: compute-only exit on set 1.
            fma_tile(&mut acc, &a1, &b1);
        }
    }

    // TEMPLATE_SAVE: C = alpha·acc + beta·C. beta == 0 skips the C load
    // entirely (first-touch stores must not read uninitialized memory).
    let valpha = V::splat(alpha);
    if beta == V::Scalar::ZERO {
        for j in 0..NR {
            for i in 0..MR {
                let ptr = c.add(i * c_i + j * c_j);
                acc[i][j].mul(valpha).store(ptr);
            }
        }
    } else {
        let vbeta = V::splat(beta);
        for j in 0..NR {
            for i in 0..MR {
                let ptr = c.add(i * c_i + j * c_j);
                let orig = V::load(ptr);
                orig.mul(vbeta).fma(acc[i][j], valpha).store(ptr);
            }
        }
    }
}

/// Non-pipelined real GEMM microkernel: the same tile update written as a
/// plain `SUB`-per-step loop (single register set, no ping-pong). Exists
/// for the pipelining ablation — §4.2's claim is that the two-deep software
/// pipeline of [`gemm_ukr`] beats this on in-order cores.
///
/// # Safety
/// As [`gemm_ukr`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub unsafe fn gemm_ukr_nopipeline<V: SimdReal, const MR: usize, const NR: usize>(
    k: usize,
    alpha: V::Scalar,
    beta: V::Scalar,
    mut pa: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    mut pb: *const V::Scalar,
    b_j: usize,
    b_k: usize,
    c: *mut V::Scalar,
    c_i: usize,
    c_j: usize,
) {
    prefetch_read(c);
    let mut acc = [[V::zero(); NR]; MR];
    for _ in 0..k {
        let a0 = load_set::<V, MR>(pa, a_i);
        let b0 = load_set::<V, NR>(pb, b_j);
        pa = pa.add(a_k);
        pb = pb.add(b_k);
        fma_tile(&mut acc, &a0, &b0);
    }
    let valpha = V::splat(alpha);
    if beta == V::Scalar::ZERO {
        for j in 0..NR {
            for i in 0..MR {
                acc[i][j].mul(valpha).store(c.add(i * c_i + j * c_j));
            }
        }
    } else {
        let vbeta = V::splat(beta);
        for j in 0..NR {
            for i in 0..MR {
                let ptr = c.add(i * c_i + j * c_j);
                let orig = V::load(ptr);
                orig.mul(vbeta).fma(acc[i][j], valpha).store(ptr);
            }
        }
    }
}

#[inline(always)]
// SAFETY: unsafe fn — `p` must be valid for the whole strided extent (`(N-1)*stride + LANES` scalars); each lane load stays inside it.
unsafe fn load_cset<V: SimdReal, const N: usize>(p: *const V::Scalar, stride: usize) -> [CVec<V>; N] {
    let mut out = [CVec::<V>::zero(); N];
    for (i, o) in out.iter_mut().enumerate() {
        *o = CVec::load(p.add(i * stride));
    }
    out
}

#[inline(always)]
fn cfma_tile<V: SimdReal, const MR: usize, const NR: usize>(
    acc: &mut [[CVec<V>; NR]; MR],
    a: &[CVec<V>; MR],
    b: &[CVec<V>; NR],
) {
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] = acc[i][j].fma(a[i], b[j]);
        }
    }
}

/// Complex GEMM microkernel (split representation).
///
/// Every complex FMA is four vector FMA-class instructions, so the
/// compute/register accounting matches the paper's Eq. 3 (optimum 3×2).
///
/// # Safety
/// As [`gemm_ukr`], with `2·P`-scalar element groups.
#[inline(always)]
pub unsafe fn cgemm_ukr<V: SimdReal, const MR: usize, const NR: usize>(
    k: usize,
    alpha: [V::Scalar; 2],
    beta: [V::Scalar; 2],
    mut pa: *const V::Scalar,
    a_i: usize,
    a_k: usize,
    mut pb: *const V::Scalar,
    b_j: usize,
    b_k: usize,
    c: *mut V::Scalar,
    c_i: usize,
    c_j: usize,
) {
    prefetch_read(c);
    prefetch_read(c.add((NR - 1) * c_j));

    let mut acc = [[CVec::<V>::zero(); NR]; MR];

    if k == 1 {
        let a0 = load_cset::<V, MR>(pa, a_i);
        let b0 = load_cset::<V, NR>(pb, b_j);
        cfma_tile(&mut acc, &a0, &b0);
    } else if k >= 2 {
        let mut a0 = load_cset::<V, MR>(pa, a_i);
        let mut a1 = load_cset::<V, MR>(pa.add(a_k), a_i);
        pa = pa.add(2 * a_k);
        let mut b0 = load_cset::<V, NR>(pb, b_j);
        let mut b1 = load_cset::<V, NR>(pb.add(b_k), b_j);
        pb = pb.add(2 * b_k);
        cfma_tile(&mut acc, &a0, &b0);

        let mut remaining = k - 1;
        while remaining >= 3 {
            a0 = load_cset::<V, MR>(pa, a_i);
            b0 = load_cset::<V, NR>(pb, b_j);
            pa = pa.add(a_k);
            pb = pb.add(b_k);
            cfma_tile(&mut acc, &a1, &b1);
            a1 = load_cset::<V, MR>(pa, a_i);
            b1 = load_cset::<V, NR>(pb, b_j);
            pa = pa.add(a_k);
            pb = pb.add(b_k);
            cfma_tile(&mut acc, &a0, &b0);
            remaining -= 2;
        }
        if remaining == 2 {
            a0 = load_cset::<V, MR>(pa, a_i);
            b0 = load_cset::<V, NR>(pb, b_j);
            cfma_tile(&mut acc, &a1, &b1);
            cfma_tile(&mut acc, &a0, &b0);
        } else {
            cfma_tile(&mut acc, &a1, &b1);
        }
    }

    let beta_zero = beta[0] == V::Scalar::ZERO && beta[1] == V::Scalar::ZERO;
    for j in 0..NR {
        for i in 0..MR {
            let ptr = c.add(i * c_i + j * c_j);
            let scaled = acc[i][j].scale(alpha[0], alpha[1]);
            let res = if beta_zero {
                scaled
            } else {
                let orig = CVec::<V>::load(ptr);
                scaled.add(orig.scale(beta[0], beta[1]))
            };
            res.store(ptr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use iatf_simd::{F32x4, F64x2};

    /// Packs random slivers in kernel panel order and compares the kernel
    /// tile against the scalar oracle for one (MR, NR, K) instance.
    fn check_real<V: SimdReal, const MR: usize, const NR: usize>(k: usize, alpha: f64, beta: f64) {
        let p = V::LANES;
        let mut rng = oracle::TestRng::new((MR * 31 + NR * 7 + k) as u64);
        let pa: Vec<V::Scalar> = (0..k * MR * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let pb: Vec<V::Scalar> = (0..k * NR * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let c0: Vec<V::Scalar> = (0..MR * NR * p)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let mut c = c0.clone();
        let (al, be) = (V::Scalar::from_f64(alpha), V::Scalar::from_f64(beta));
        // SAFETY: the buffers above are sized exactly to the kernel's packed-panel extents for these (k, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            gemm_ukr::<V, MR, NR>(
                k,
                al,
                be,
                pa.as_ptr(),
                p,
                MR * p,
                pb.as_ptr(),
                p,
                NR * p,
                c.as_mut_ptr(),
                p,
                MR * p,
            );
        }
        let want = oracle::real_gemm_tile::<V::Scalar>(MR, NR, k, p, alpha, beta, &pa, &pb, &c0);
        let tol = if V::Scalar::BYTES == 4 { 1e-4 } else { 1e-12 };
        for (idx, (&got, &w)) in c.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.to_f64() - w).abs() <= tol * w.abs().max(1.0),
                "MRxNR {MR}x{NR} k={k} idx={idx}: {got} vs {w}"
            );
        }
    }

    #[test]
    fn all_sizes_all_k_f64() {
        // k sweeps every Algorithm-3 arm: SUB-only, I;E, I;E;SUB, even/odd
        // pipelines.
        for k in 1..=9 {
            check_real::<F64x2, 1, 1>(k, 1.0, 1.0);
            check_real::<F64x2, 2, 3>(k, 1.0, 1.0);
            check_real::<F64x2, 3, 2>(k, 1.0, 1.0);
            check_real::<F64x2, 4, 4>(k, 1.0, 1.0);
            check_real::<F64x2, 4, 1>(k, 1.0, 1.0);
            check_real::<F64x2, 1, 4>(k, 1.0, 1.0);
        }
        check_real::<F64x2, 4, 4>(33, 1.0, 1.0);
    }

    #[test]
    fn all_sizes_f32() {
        for k in 1..=6 {
            check_real::<F32x4, 4, 4>(k, 1.0, 1.0);
            check_real::<F32x4, 3, 3>(k, 1.0, 1.0);
            check_real::<F32x4, 2, 4>(k, 1.0, 1.0);
        }
        check_real::<F32x4, 4, 4>(32, 1.0, 1.0);
    }

    #[test]
    fn alpha_beta_variants() {
        for (alpha, beta) in [(1.0, 0.0), (2.5, 0.0), (1.0, 1.0), (-0.5, 3.0), (0.0, 1.0)] {
            check_real::<F64x2, 4, 4>(5, alpha, beta);
            check_real::<F32x4, 4, 3>(4, alpha, beta);
        }
    }

    #[test]
    fn beta_zero_ignores_garbage_c() {
        // With beta == 0 the kernel must not incorporate prior C contents —
        // fill C with NaN and require a finite result.
        let p = F64x2::LANES;
        let k = 3;
        let pa = vec![1.0f64; k * 2 * p];
        let pb = vec![1.0f64; k * 2 * p];
        let mut c = vec![f64::NAN; 2 * 2 * p];
        // SAFETY: the buffers above are sized exactly to the kernel's packed-panel extents for these (k, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            gemm_ukr::<F64x2, 2, 2>(
                k,
                1.0,
                0.0,
                pa.as_ptr(),
                p,
                2 * p,
                pb.as_ptr(),
                p,
                2 * p,
                c.as_mut_ptr(),
                p,
                2 * p,
            );
        }
        for &x in &c {
            assert_eq!(x, k as f64);
        }
    }

    fn check_cplx<V: SimdReal, const MR: usize, const NR: usize>(
        k: usize,
        alpha: [f64; 2],
        beta: [f64; 2],
    ) {
        let p = V::LANES;
        let g = 2 * p;
        let mut rng = oracle::TestRng::new((MR * 113 + NR * 17 + k) as u64);
        let pa: Vec<V::Scalar> = (0..k * MR * g)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let pb: Vec<V::Scalar> = (0..k * NR * g)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let c0: Vec<V::Scalar> = (0..MR * NR * g)
            .map(|_| V::Scalar::from_f64(rng.next()))
            .collect();
        let mut c = c0.clone();
        let al = [
            V::Scalar::from_f64(alpha[0]),
            V::Scalar::from_f64(alpha[1]),
        ];
        let be = [V::Scalar::from_f64(beta[0]), V::Scalar::from_f64(beta[1])];
        // SAFETY: the buffers above are sized exactly to the kernel's packed-panel extents for these (k, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            cgemm_ukr::<V, MR, NR>(
                k,
                al,
                be,
                pa.as_ptr(),
                g,
                MR * g,
                pb.as_ptr(),
                g,
                NR * g,
                c.as_mut_ptr(),
                g,
                MR * g,
            );
        }
        let want =
            oracle::cplx_gemm_tile::<V::Scalar>(MR, NR, k, p, alpha, beta, &pa, &pb, &c0);
        let tol = if V::Scalar::BYTES == 4 { 1e-3 } else { 1e-11 };
        for (idx, (&got, &w)) in c.iter().zip(want.iter()).enumerate() {
            assert!(
                (got.to_f64() - w).abs() <= tol * w.abs().max(1.0),
                "cplx {MR}x{NR} k={k} idx={idx}: {got} vs {w}"
            );
        }
    }

    #[test]
    fn complex_all_sizes_all_k() {
        for k in 1..=7 {
            check_cplx::<F32x4, 3, 2>(k, [1.0, 0.0], [1.0, 0.0]);
            check_cplx::<F64x2, 3, 2>(k, [1.0, 0.0], [1.0, 0.0]);
            check_cplx::<F64x2, 1, 1>(k, [1.0, 0.0], [1.0, 0.0]);
            check_cplx::<F64x2, 2, 2>(k, [1.0, 0.0], [1.0, 0.0]);
            check_cplx::<F32x4, 1, 2>(k, [1.0, 0.0], [1.0, 0.0]);
            check_cplx::<F32x4, 2, 1>(k, [1.0, 0.0], [1.0, 0.0]);
        }
    }

    #[test]
    fn complex_alpha_beta() {
        check_cplx::<F64x2, 3, 2>(4, [0.5, -1.5], [2.0, 0.25]);
        check_cplx::<F64x2, 2, 2>(5, [0.0, 1.0], [0.0, 0.0]);
        check_cplx::<F32x4, 3, 2>(6, [1.0, 1.0], [1.0, -1.0]);
    }

    #[test]
    fn nopipeline_variant_matches_pipelined() {
        // identical inputs → identical sums (same accumulation order per
        // element, both fused)
        let p = F64x2::LANES;
        for k in [1usize, 2, 5, 16] {
            let mut rng = oracle::TestRng::new(k as u64);
            let pa: Vec<f64> = (0..k * 4 * p).map(|_| rng.next()).collect();
            let pb: Vec<f64> = (0..k * 4 * p).map(|_| rng.next()).collect();
            let c0: Vec<f64> = (0..16 * p).map(|_| rng.next()).collect();
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            // SAFETY: the buffers above are sized exactly to the kernel's packed-panel extents for these (k, MR, NR, P), and the strides passed match that sizing.
            unsafe {
                gemm_ukr::<F64x2, 4, 4>(
                    k,
                    1.25,
                    0.5,
                    pa.as_ptr(),
                    p,
                    4 * p,
                    pb.as_ptr(),
                    p,
                    4 * p,
                    c1.as_mut_ptr(),
                    p,
                    4 * p,
                );
                gemm_ukr_nopipeline::<F64x2, 4, 4>(
                    k,
                    1.25,
                    0.5,
                    pa.as_ptr(),
                    p,
                    4 * p,
                    pb.as_ptr(),
                    p,
                    4 * p,
                    c2.as_mut_ptr(),
                    p,
                    4 * p,
                );
            }
            // the pipelined kernel's first step is FMUL, the plain kernel's
            // is FMA onto zero — both exact, so results are identical
            assert_eq!(c1, c2, "k={k}");
        }
    }

    #[test]
    fn strided_direct_access() {
        // Simulate the no-pack path: A stored with a column stride larger
        // than the sliver (rows > MR) and B column-major.
        let p = F64x2::LANES;
        let (rows, k, nr) = (3usize, 4usize, 2usize);
        const MR: usize = 2;
        let mut rng = oracle::TestRng::new(77);
        // A: compact column-major rows×k
        let a: Vec<f64> = (0..rows * k * p).map(|_| rng.next()).collect();
        // B: compact column-major k×nr
        let b: Vec<f64> = (0..k * nr * p).map(|_| rng.next()).collect();
        let mut c = vec![0.0f64; rows * nr * p];
        // SAFETY: the buffers above are sized exactly to the kernel's packed-panel extents for these (k, MR, NR, P), and the strides passed match that sizing.
        unsafe {
            gemm_ukr::<F64x2, MR, 2>(
                k,
                1.0,
                0.0,
                a.as_ptr(), // rows i=0..2 of A
                p,
                rows * p, // next k step is one column over
                b.as_ptr(),
                k * p, // next column of B
                p,     // next k step is one row down
                c.as_mut_ptr(),
                p,
                rows * p,
            );
        }
        // reference: c[i][j][lane] = sum_k a[(k*rows+i)*p+l] * b[(j*k+kk)*p+l]
        for i in 0..MR {
            for j in 0..nr {
                for l in 0..p {
                    let mut want = 0.0;
                    for kk in 0..k {
                        want += a[(kk * rows + i) * p + l] * b[(j * k + kk) * p + l];
                    }
                    let got = c[(j * rows + i) * p + l];
                    assert!((got - want).abs() < 1e-12, "({i},{j},{l}): {got} vs {want}");
                }
            }
        }
    }
}
