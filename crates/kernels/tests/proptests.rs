//! Property-based kernel tests: every dispatch-table kernel against the
//! scalar oracle over random shapes, depths and operands.

use iatf_kernels::oracle;
use iatf_kernels::table::{
    cplx_gemm_kernel, cplx_trsm_kernel, real_gemm_kernel, real_trsm_kernel,
};
use iatf_simd::{F32x4, F64x2, Real, SimdReal, VecWidth};
use proptest::prelude::*;

fn vecs(len: usize, seed: u64, scale: f64) -> Vec<f64> {
    let mut rng = oracle::TestRng::new(seed);
    (0..len).map(|_| rng.next() * scale).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn real_gemm_kernels_match_oracle_f64(
        mr in 1usize..=4,
        nr in 1usize..=4,
        k in 1usize..=40,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u32>(),
    ) {
        let p = F64x2::LANES;
        let pa: Vec<f64> = vecs(k * mr * p, seed as u64, 1.0);
        let pb: Vec<f64> = vecs(k * nr * p, seed as u64 + 1, 1.0);
        let c0: Vec<f64> = vecs(mr * nr * p, seed as u64 + 2, 1.0);
        let mut c = c0.clone();
        let kern = real_gemm_kernel::<f64>(VecWidth::W128, mr, nr);
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for the proptest-chosen (k, mr, nr, P), and the strides passed match that sizing.
        unsafe {
            kern(k, alpha, beta, pa.as_ptr(), p, mr * p, pb.as_ptr(), p, nr * p,
                 c.as_mut_ptr(), p, mr * p);
        }
        let want = oracle::real_gemm_tile(mr, nr, k, p, alpha, beta, &pa, &pb, &c0);
        for (got, w) in c.iter().zip(&want) {
            prop_assert!((got - w).abs() < 1e-11 * w.abs().max(1.0));
        }
    }

    #[test]
    fn real_gemm_kernels_match_oracle_f32(
        mr in 1usize..=4,
        nr in 1usize..=4,
        k in 1usize..=24,
        seed in any::<u32>(),
    ) {
        let p = F32x4::LANES;
        let paf: Vec<f32> = vecs(k * mr * p, seed as u64, 1.0).iter().map(|&x| x as f32).collect();
        let pbf: Vec<f32> = vecs(k * nr * p, seed as u64 + 1, 1.0).iter().map(|&x| x as f32).collect();
        let c0f: Vec<f32> = vecs(mr * nr * p, seed as u64 + 2, 1.0).iter().map(|&x| x as f32).collect();
        let mut c = c0f.clone();
        let kern = real_gemm_kernel::<f32>(VecWidth::W128, mr, nr);
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for the proptest-chosen (k, mr, nr, P), and the strides passed match that sizing.
        unsafe {
            kern(k, 1.5, 0.5, paf.as_ptr(), p, mr * p, pbf.as_ptr(), p, nr * p,
                 c.as_mut_ptr(), p, mr * p);
        }
        let want = oracle::real_gemm_tile(mr, nr, k, p, 1.5, 0.5, &paf, &pbf, &c0f);
        for (got, w) in c.iter().zip(&want) {
            prop_assert!((got.to_f64() - w).abs() < 1e-4 * w.abs().max(1.0));
        }
    }

    #[test]
    fn cplx_gemm_kernels_match_oracle(
        mr in 1usize..=3,
        nr in 1usize..=2,
        k in 1usize..=24,
        ar in -1.5f64..1.5,
        ai in -1.5f64..1.5,
        seed in any::<u32>(),
    ) {
        let p = F64x2::LANES;
        let g = 2 * p;
        let pa: Vec<f64> = vecs(k * mr * g, seed as u64, 1.0);
        let pb: Vec<f64> = vecs(k * nr * g, seed as u64 + 1, 1.0);
        let c0: Vec<f64> = vecs(mr * nr * g, seed as u64 + 2, 1.0);
        let mut c = c0.clone();
        let kern = cplx_gemm_kernel::<f64>(VecWidth::W128, mr, nr);
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for the proptest-chosen (k, mr, nr, P), and the strides passed match that sizing.
        unsafe {
            kern(k, [ar, ai], [0.5, -0.25], pa.as_ptr(), g, mr * g, pb.as_ptr(), g, nr * g,
                 c.as_mut_ptr(), g, mr * g);
        }
        let want = oracle::cplx_gemm_tile(mr, nr, k, p, [ar, ai], [0.5, -0.25], &pa, &pb, &c0);
        for (got, w) in c.iter().zip(&want) {
            prop_assert!((got - w).abs() < 1e-10 * w.abs().max(1.0));
        }
    }

    #[test]
    fn real_trsm_kernels_match_oracle(
        mr in 1usize..=5,
        nr in 1usize..=4,
        kk in 0usize..=24,
        seed in any::<u32>(),
    ) {
        let p = F64x2::LANES;
        let rows = kk + mr;
        let pa_rect: Vec<f64> = vecs(kk * mr * p, seed as u64, 1.0 / rows as f64);
        // triangle with safe reciprocal diagonal
        let mut rng = oracle::TestRng::new(seed as u64 + 9);
        let tg = mr * (mr + 1) / 2;
        let mut tri = vec![0.0f64; tg * p];
        for r in 0..mr {
            let base = r * (r + 1) / 2;
            for cc in 0..=r {
                for l in 0..p {
                    tri[(base + cc) * p + l] = if cc == r {
                        1.0 / (1.0 + rng.next().abs())
                    } else {
                        rng.next() / mr as f64
                    };
                }
            }
        }
        let row_stride = nr * p;
        let panel0: Vec<f64> = vecs(rows * nr * p, seed as u64 + 3, 1.0);
        let mut panel = panel0.clone();
        let kern = real_trsm_kernel::<f64>(VecWidth::W128, mr, nr);
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for the proptest-chosen (k, mr, nr, P), and the strides passed match that sizing.
        unsafe {
            kern(kk, pa_rect.as_ptr(), p, mr * p, tri.as_ptr(),
                 panel.as_mut_ptr(), kk, row_stride, p);
        }
        let want = oracle::real_trsm_block(mr, nr, kk, p, &pa_rect, &tri, &panel0, kk, row_stride, p);
        for (got, w) in panel.iter().zip(&want) {
            prop_assert!((got - w).abs() < 1e-10 * w.abs().max(1.0));
        }
    }

    #[test]
    fn cplx_trsm_kernels_match_oracle(
        mr in 1usize..=2,
        nr in 1usize..=2,
        kk in 0usize..=16,
        seed in any::<u32>(),
    ) {
        let p = F32x4::LANES;
        let g = 2 * p;
        let rows = kk + mr;
        let rect64 = vecs(kk * mr * g, seed as u64, 1.0 / rows as f64);
        let pa_rect: Vec<f32> = rect64.iter().map(|&x| x as f32).collect();
        let mut rng = oracle::TestRng::new(seed as u64 + 9);
        let tg = mr * (mr + 1) / 2;
        let mut tri = vec![0.0f32; tg * g];
        for r in 0..mr {
            let base = r * (r + 1) / 2;
            for cc in 0..=r {
                for l in 0..p {
                    if cc == r {
                        let d = 1.0 + rng.next().abs();
                        let di = 0.2 * rng.next();
                        let n = d * d + di * di;
                        tri[(base + cc) * g + l] = (d / n) as f32;
                        tri[(base + cc) * g + p + l] = (-di / n) as f32;
                    } else {
                        tri[(base + cc) * g + l] = (rng.next() / mr as f64) as f32;
                        tri[(base + cc) * g + p + l] = (rng.next() / mr as f64) as f32;
                    }
                }
            }
        }
        let row_stride = nr * g;
        let panel064 = vecs(rows * nr * g, seed as u64 + 3, 1.0);
        let panel0: Vec<f32> = panel064.iter().map(|&x| x as f32).collect();
        let mut panel = panel0.clone();
        let kern = cplx_trsm_kernel::<f32>(VecWidth::W128, mr, nr);
        // SAFETY: the buffers above are sized exactly to the kernel's packed extents for the proptest-chosen (k, mr, nr, P), and the strides passed match that sizing.
        unsafe {
            kern(kk, pa_rect.as_ptr(), g, mr * g, tri.as_ptr(),
                 panel.as_mut_ptr(), kk, row_stride, g);
        }
        let rect_f: Vec<f64> = pa_rect.iter().map(|&x| x as f64).collect();
        let tri_f: Vec<f64> = tri.iter().map(|&x| x as f64).collect();
        let panel_f: Vec<f64> = panel0.iter().map(|&x| x as f64).collect();
        let want = oracle::cplx_trsm_block(mr, nr, kk, p, &rect_f, &tri_f, &panel_f, kk, row_stride, g);
        for (got, w) in panel.iter().zip(&want) {
            prop_assert!((got.to_f64() - w).abs() < 2e-3 * w.abs().max(1.0),
                "got {got} want {w}");
        }
    }
}
