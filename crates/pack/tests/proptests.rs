//! Property-based packing tests: mode canonicalization and round-trips
//! over random shapes and all modes.

use iatf_layout::{CompactBatch, Diag, Side, StdBatch, Trans, TrsmMode, Uplo};
use iatf_pack::{gemm as pg, trsm as pt};
use iatf_simd::{c64, VecWidth};

// The offset arithmetic below assumes P=2 (f64/c64 at 128-bit), so every
// batch is pinned to W128 regardless of the host's dispatched width.
const W: VecWidth = VecWidth::W128;
use proptest::prelude::*;

fn trsm_mode_strategy() -> impl Strategy<Value = TrsmMode> {
    (
        prop_oneof![Just(Side::Left), Just(Side::Right)],
        prop_oneof![Just(Trans::No), Just(Trans::Yes)],
        prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)],
        prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)],
    )
        .prop_map(|(s, t, u, d)| TrsmMode::new(s, t, u, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_pack_a_places_every_element(
        m in 1usize..=20,
        k in 1usize..=20,
        trans in prop_oneof![Just(Trans::No), Just(Trans::Yes)],
        count in 1usize..=6,
        seed in any::<u32>(),
    ) {
        let (rows, cols) = match trans { Trans::No => (m, k), Trans::Yes => (k, m) };
        let std = StdBatch::<f64>::random(rows, cols, count, seed as u64);
        let compact = CompactBatch::from_std_at(&std, W);
        let mut dst = vec![0.0f64; pg::panel_a_len::<f64>(2, m, k)];
        for pack in 0..compact.packs() {
            pg::pack_a(&mut dst, &compact, pack, trans, false, 4, m, k);
            // verify via the documented panel addressing
            let g = compact.group();
            let mut i0 = 0;
            while i0 < m {
                let h = 4.min(m - i0);
                for kk in 0..k {
                    for i in 0..h {
                        let off = pg::a_tile_offset::<f64>(2, i0, k) + (kk * h + i) * g;
                        for lane in 0..2 {
                            let v = pack * 2 + lane;
                            if v >= count { continue; }
                            let want = match trans {
                                Trans::No => std.get(v, i0 + i, kk),
                                Trans::Yes => std.get(v, kk, i0 + i),
                            };
                            prop_assert_eq!(dst[off + lane], want);
                        }
                    }
                }
                i0 += h;
            }
        }
    }

    #[test]
    fn trsm_map_composition_is_involutive_on_b(
        mode in trsm_mode_strategy(),
        m in 1usize..=12,
        n in 1usize..=12,
    ) {
        // writing through b_src then reading through b_src is the identity
        let map = pt::TrsmIndexMap::new(mode, false, m, n);
        let mut grid = vec![usize::MAX; m * n];
        for i in 0..map.t {
            for j in 0..map.bn {
                let (r, c) = map.b_src(i, j);
                grid[c * m + r] = i * map.bn + j;
            }
        }
        // bijection: every B element hit exactly once
        prop_assert!(grid.iter().all(|&x| x != usize::MAX));
        let mut seen = grid.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), m * n);
    }

    #[test]
    fn trsm_a_map_respects_referenced_triangle(
        mode in trsm_mode_strategy(),
        t in 1usize..=16,
    ) {
        let (m, n) = match mode.side { Side::Left => (t, 3), Side::Right => (3, t) };
        let map = pt::TrsmIndexMap::new(mode, false, m, n);
        for i in 0..map.t {
            for j in 0..=i {
                let (r, c) = map.a_src(i, j);
                prop_assert!(r < t && c < t);
                match mode.uplo {
                    Uplo::Lower => prop_assert!(r >= c),
                    Uplo::Upper => prop_assert!(r <= c),
                }
            }
        }
    }

    #[test]
    fn trsm_b_panel_pack_unpack_round_trip(
        mode in trsm_mode_strategy(),
        m in 1usize..=10,
        n in 1usize..=10,
        seed in any::<u32>(),
    ) {
        let src = StdBatch::<c64>::random(m, n, 3, seed as u64);
        let compact = CompactBatch::from_std_at(&src, W);
        let map = pt::TrsmIndexMap::new(mode, false, m, n);
        let mut out = CompactBatch::<c64>::zeroed_at(m, n, 3, W);
        // pack every panel with α = 1 and immediately unpack into `out`:
        // the result must equal the source (on live lanes)
        let w_step = 2usize;
        for pack in 0..compact.packs() {
            let mut j0 = 0;
            while j0 < map.bn {
                let w = w_step.min(map.bn - j0);
                let mut panel = vec![0.0f64; pt::panel_b_len::<c64>(2, map.t, w)];
                pt::pack_b_panel::<c64>(
                    &mut panel,
                    compact.pack_slice(pack),
                    compact.rows(),
                    2,
                    &map,
                    j0,
                    w,
                    c64::new(1.0, 0.0),
                );
                pt::unpack_b_panel::<c64>(
                    &panel,
                    out.pack_slice_mut(pack),
                    m,
                    2,
                    &map,
                    j0,
                    w,
                );
                j0 += w;
            }
        }
        prop_assert_eq!(src.max_abs_diff(&out.to_std()), 0.0);
    }

    #[test]
    fn packed_reciprocal_inverts_diagonal(
        t in 1usize..=12,
        seed in any::<u32>(),
    ) {
        let std = StdBatch::<f64>::random_triangular(t, 2, Uplo::Lower, Diag::NonUnit, seed as u64);
        let compact = CompactBatch::from_std_at(&std, W);
        let map = pt::TrsmIndexMap::new(TrsmMode::LNLN, false, t, 1);
        let blocks = pt::block_decomposition(t, 4, 5);
        let (layout, total) = pt::a_layout::<f64>(2, &blocks);
        let mut dst = vec![0.0f64; total];
        pt::pack_a_trsm::<f64>(&mut dst, compact.pack_slice(0), t, 2, &map, &layout, 2);
        for blk in &layout {
            for i in 0..blk.mb {
                let base = blk.tri_off + (i * (i + 1) / 2 + i) * 2;
                for lane in 0..2 {
                    let d = std.get(lane, blk.r0 + i, blk.r0 + i);
                    let prod = dst[base + lane] * d;
                    prop_assert!((prod - 1.0).abs() < 1e-12);
                }
            }
        }
    }
}
