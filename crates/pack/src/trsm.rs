//! TRSM packing kernels (paper §4.4) and mode canonicalization.
//!
//! Every one of the sixteen `(side, trans, uplo, diag)` modes is folded into
//! one canonical form — **left, lower, non-transposed** — by an index map
//! applied while gathering:
//!
//! * `side = Right` and/or `trans = T` compose into a single *flip* (read
//!   the stored element `(j, i)` instead of `(i, j)`): `X·op(A) = αB` is
//!   `op(A)ᵀ·Xᵀ = αBᵀ`, so the right side is the left-side solve of the
//!   transposed system on a transposed panel.
//! * If the *effective* triangle after flipping is upper, indices are
//!   *reversed* (`i ↦ T−1−i`): reversing rows and columns of an upper
//!   triangular matrix yields a lower triangular one, and the permuted
//!   solution is un-permuted for free while unpacking.
//!
//! This is exactly the paper's Pack Selecter contract: "pack matrices into
//! the same order, so that only one computational kernel is needed to handle
//! all modes."
//!
//! The packed A triangle stores diagonal entries as **reciprocals** (`1/aᵢᵢ`;
//! complex: `ā/|a|²`) because "considering the long delay of division
//! instructions under the ARM architecture ... the diagonal part is stored
//! as its reciprocal" (§4.4). `Diag::Unit` packs reciprocal 1 and never
//! reads the stored diagonal. The α of `op(A)·X = α·B` is applied while
//! packing B.
//!
//! These packers work on raw pack slices, so the interleaving factor `p`
//! (lanes per element group — a property of the batch's vector width) is an
//! explicit parameter throughout; callers pass `CompactBatch::p()`.

use crate::gemm::group_len;
use iatf_layout::{Diag, Side, Trans, TrsmMode, Uplo};
use iatf_simd::{Element, Real};

/// Canonicalizing index map for one TRSM problem.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TrsmIndexMap {
    /// Order of the triangular matrix.
    pub t: usize,
    /// Columns of the canonical right-hand side `B̂` (`n` for left, `m` for
    /// right).
    pub bn: usize,
    /// Read stored `(j, i)` instead of `(i, j)` (side/trans composition).
    pub flip: bool,
    /// Reverse indices (`i ↦ t−1−i`) to turn effective-upper into lower.
    pub reversed: bool,
    /// Conjugate A elements while packing (conjugate-transpose modes).
    pub conj: bool,
    /// Unit-diagonal solve: pack reciprocal 1, never read the diagonal.
    pub unit: bool,
    /// Right-side problem (affects the B mapping).
    pub side_right: bool,
}

impl TrsmIndexMap {
    /// Builds the map for a mode and the B dimensions `m × n`.
    pub fn new(mode: TrsmMode, conj: bool, m: usize, n: usize) -> Self {
        let side_right = mode.side == Side::Right;
        let t = if side_right { n } else { m };
        let bn = if side_right { m } else { n };
        let flip = side_right ^ (mode.trans == Trans::Yes);
        let uplo_eff = if flip { mode.uplo.flip() } else { mode.uplo };
        Self {
            t,
            bn,
            flip,
            reversed: uplo_eff == Uplo::Upper,
            conj,
            unit: mode.diag == Diag::Unit,
            side_right,
        }
    }

    /// Stored `(row, col)` of the canonical coefficient `Â(i, j)`, `i ≥ j`.
    #[inline]
    pub fn a_src(&self, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i >= j && i < self.t);
        let (ii, jj) = if self.reversed {
            (self.t - 1 - i, self.t - 1 - j)
        } else {
            (i, j)
        };
        if self.flip {
            (jj, ii)
        } else {
            (ii, jj)
        }
    }

    /// Stored `(row, col)` in B of the canonical `B̂(i, j)`. The same map
    /// serves packing (gather) and unpacking (scatter of the solution).
    #[inline]
    pub fn b_src(&self, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i < self.t && j < self.bn);
        let ii = if self.reversed { self.t - 1 - i } else { i };
        if self.side_right {
            (j, ii)
        } else {
            (ii, j)
        }
    }
}

/// Placement of one diagonal block's packed data inside the A buffer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ABlockLayout {
    /// First canonical row of the block.
    pub r0: usize,
    /// Block height (rows of the diagonal triangle).
    pub mb: usize,
    /// Scalar offset of the rectangular strip (`r0` slivers of `mb` groups).
    pub rect_off: usize,
    /// Scalar offset of the packed triangle (`mb·(mb+1)/2` groups).
    pub tri_off: usize,
}

/// Computes the packed-A layout for a block decomposition and the total
/// buffer length in scalars, at interleaving factor `p`. `blocks` are
/// `(r0, mb)` pairs in row order (N-shaped: by the time block `b` is
/// packed/consumed, all rows above it already are — paper §4.4's
/// requirement for the solve ordering).
pub fn a_layout<E: Element>(p: usize, blocks: &[(usize, usize)]) -> (Vec<ABlockLayout>, usize) {
    let g = group_len::<E>(p);
    let mut out = Vec::with_capacity(blocks.len());
    let mut off = 0usize;
    for &(r0, mb) in blocks {
        let rect_off = off;
        off += r0 * mb * g;
        let tri_off = off;
        off += mb * (mb + 1) / 2 * g;
        out.push(ABlockLayout {
            r0,
            mb,
            rect_off,
            tri_off,
        });
    }
    (out, off)
}

/// Standard block decomposition: diagonal blocks of height `tb`, with the
/// register-capacity special case — when the whole triangle fits the
/// register file (`t ≤ t_max`, paper: `M ≤ 5` real / `M ≤ 2` complex) a
/// single block is used and no rectangular phase exists.
pub fn block_decomposition(t: usize, tb: usize, t_max: usize) -> Vec<(usize, usize)> {
    if t == 0 {
        return Vec::new();
    }
    if t <= t_max {
        return vec![(0, t)];
    }
    let mut blocks = Vec::with_capacity(t.div_ceil(tb));
    let mut r0 = 0;
    while r0 < t {
        let mb = tb.min(t - r0);
        blocks.push((r0, mb));
        r0 += mb;
    }
    blocks
}

#[inline]
fn write_group<E: Element>(
    p: usize,
    dst: &mut [E::Real],
    src_pack: &[E::Real],
    rows: usize,
    (r, c): (usize, usize),
    conj: bool,
) {
    let g = group_len::<E>(p);
    let s = (c * rows + r) * g;
    dst[..g].copy_from_slice(&src_pack[s..s + g]);
    if conj && E::IS_COMPLEX {
        for x in &mut dst[p..g] {
            *x = -*x;
        }
    }
}

/// Writes the stored diagonal group into `dst`, inverted when `recip`
/// (TRSM) or verbatim (TRMM). Padding lanes (≥ `live`) and unit mode get
/// the identity value 1.
#[allow(clippy::too_many_arguments)]
#[inline]
fn write_diag_group<E: Element>(
    p: usize,
    dst: &mut [E::Real],
    src_pack: &[E::Real],
    rows: usize,
    (r, c): (usize, usize),
    live: usize,
    unit: bool,
    conj: bool,
    recip: bool,
) {
    let s = (c * rows + r) * p * E::SCALARS;
    for lane in 0..p {
        if unit || lane >= live {
            dst[lane] = E::Real::ONE;
            if E::IS_COMPLEX {
                dst[p + lane] = E::Real::ZERO;
            }
        } else if E::IS_COMPLEX {
            let re = src_pack[s + lane];
            // conjugate-transpose modes see the conjugated diagonal
            let im = if conj {
                -src_pack[s + p + lane]
            } else {
                src_pack[s + p + lane]
            };
            if recip {
                let norm = re * re + im * im;
                dst[lane] = re / norm;
                dst[p + lane] = -im / norm;
            } else {
                dst[lane] = re;
                dst[p + lane] = im;
            }
        } else if recip {
            dst[lane] = E::Real::ONE / src_pack[s + lane];
        } else {
            dst[lane] = src_pack[s + lane];
        }
    }
}

/// Packs one pack of the TRSM coefficient matrix (given as its scalar
/// slice `sp` with `rows` stored rows, at interleaving factor `p`) into
/// block layout: per block, the rectangular strip (K-major `mb`-group
/// slivers) followed by the lower triangle rows with reciprocal diagonals.
///
/// `live` is the number of valid lanes in this pack (`p` except possibly the
/// last pack); padded diagonal lanes get reciprocal 1 so the dead lanes stay
/// finite through the solve.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_trsm<E: Element>(
    dst: &mut [E::Real],
    sp: &[E::Real],
    rows: usize,
    p: usize,
    map: &TrsmIndexMap,
    layout: &[ABlockLayout],
    live: usize,
) {
    pack_a_tri::<E>(dst, sp, rows, p, map, layout, live, true);
}

/// Packs the coefficient triangle with either reciprocal (TRSM) or direct
/// (TRMM) diagonals — everything else identical.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_tri<E: Element>(
    dst: &mut [E::Real],
    sp: &[E::Real],
    rows: usize,
    p: usize,
    map: &TrsmIndexMap,
    layout: &[ABlockLayout],
    live: usize,
    recip: bool,
) {
    let g = group_len::<E>(p);
    for blk in layout {
        // rectangular strip: Â(r0+i, k) for k < r0, K-major
        let mut off = blk.rect_off;
        for k in 0..blk.r0 {
            for i in 0..blk.mb {
                write_group::<E>(
                    p,
                    &mut dst[off..off + g],
                    sp,
                    rows,
                    map.a_src(blk.r0 + i, k),
                    map.conj,
                );
                off += g;
            }
        }
        // triangle rows: Â(r0+i, r0+j), j ≤ i, reciprocal diagonal
        let mut off = blk.tri_off;
        for i in 0..blk.mb {
            for j in 0..i {
                write_group::<E>(
                    p,
                    &mut dst[off..off + g],
                    sp,
                    rows,
                    map.a_src(blk.r0 + i, blk.r0 + j),
                    map.conj,
                );
                off += g;
            }
            write_diag_group::<E>(
                p,
                &mut dst[off..off + g],
                sp,
                rows,
                map.a_src(blk.r0 + i, blk.r0 + i),
                live,
                map.unit,
                map.conj,
                recip,
            );
            off += g;
        }
    }
}

/// Scalar length of a packed B panel of width `w` at interleaving factor
/// `p`.
pub fn panel_b_len<E: Element>(p: usize, t: usize, w: usize) -> usize {
    t * w * group_len::<E>(p)
}

#[inline]
fn scale_group<E: Element>(p: usize, dst: &mut [E::Real], alpha: E) {
    if E::IS_COMPLEX {
        let (ar, ai) = (alpha.re(), alpha.im());
        for lane in 0..p {
            let re = dst[lane];
            let im = dst[p + lane];
            dst[lane] = re * ar - im * ai;
            dst[p + lane] = re * ai + im * ar;
        }
    } else {
        let a = alpha.re();
        for x in dst.iter_mut() {
            *x *= a;
        }
    }
}

/// Packs a width-`w` column panel of B̂ (rows `0..t`, columns `j0..j0+w`)
/// into row-major panel layout (`row_stride = w·g`, `col_stride = g`),
/// scaling by α during the copy.
#[allow(clippy::too_many_arguments)]
pub fn pack_b_panel<E: Element>(
    dst: &mut [E::Real],
    sp: &[E::Real],
    rows: usize,
    p: usize,
    map: &TrsmIndexMap,
    j0: usize,
    w: usize,
    alpha: E,
) {
    let g = group_len::<E>(p);
    let scale = alpha != E::one();
    let mut off = 0usize;
    for i in 0..map.t {
        for j in 0..w {
            let dg = &mut dst[off..off + g];
            write_group::<E>(p, dg, sp, rows, map.b_src(i, j0 + j), false);
            if scale {
                scale_group::<E>(p, dg, alpha);
            }
            off += g;
        }
    }
}

/// Scatters a solved panel back into the compact B batch (which becomes X),
/// inverting the canonical mapping.
pub fn unpack_b_panel<E: Element>(
    src_panel: &[E::Real],
    dp: &mut [E::Real],
    rows: usize,
    p: usize,
    map: &TrsmIndexMap,
    j0: usize,
    w: usize,
) {
    let g = group_len::<E>(p);
    let mut off = 0usize;
    for i in 0..map.t {
        for j in 0..w {
            let (r, c) = map.b_src(i, j0 + j);
            let d = (c * rows + r) * g;
            dp[d..d + g].copy_from_slice(&src_panel[off..off + g]);
            off += g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_layout::{CompactBatch, StdBatch};
    use iatf_simd::{c64, VecWidth};

    // The numeric-offset tests below assume P=2 (f64 at 128-bit), so they
    // pin the layout to W128 regardless of the host's dispatched width.
    const W: VecWidth = VecWidth::W128;

    #[test]
    fn maps_read_only_the_stored_triangle() {
        // For every mode, a_src of a canonical-lower position must land in
        // the triangle the mode says is referenced.
        for mode in TrsmMode::all() {
            let map = TrsmIndexMap::new(mode, false, 6, 4);
            for i in 0..map.t {
                for j in 0..=i {
                    let (r, c) = map.a_src(i, j);
                    match mode.uplo {
                        Uplo::Lower => assert!(r >= c, "{mode}: ({i},{j})→({r},{c})"),
                        Uplo::Upper => assert!(r <= c, "{mode}: ({i},{j})→({r},{c})"),
                    }
                    // diagonal maps to diagonal
                    if i == j {
                        assert_eq!(r, c);
                    }
                }
            }
        }
    }

    #[test]
    fn a_src_is_a_bijection_on_the_triangle() {
        for mode in TrsmMode::all() {
            let map = TrsmIndexMap::new(mode, false, 5, 5);
            let mut seen = std::collections::HashSet::new();
            for i in 0..map.t {
                for j in 0..=i {
                    assert!(seen.insert(map.a_src(i, j)), "{mode}");
                }
            }
            assert_eq!(seen.len(), map.t * (map.t + 1) / 2);
        }
    }

    #[test]
    fn b_src_is_a_bijection() {
        for mode in TrsmMode::all() {
            let map = TrsmIndexMap::new(mode, false, 3, 7);
            let mut seen = std::collections::HashSet::new();
            for i in 0..map.t {
                for j in 0..map.bn {
                    let (r, c) = map.b_src(i, j);
                    assert!(r < 3 && c < 7, "{mode}");
                    assert!(seen.insert((r, c)), "{mode}");
                }
            }
            assert_eq!(seen.len(), 21);
        }
    }

    #[test]
    fn dimensions_follow_side() {
        let left = TrsmIndexMap::new(TrsmMode::LNLN, false, 4, 9);
        assert_eq!((left.t, left.bn), (4, 9));
        let right = TrsmMode::new(Side::Right, Trans::No, Uplo::Upper, Diag::NonUnit);
        let map = TrsmIndexMap::new(right, false, 4, 9);
        assert_eq!((map.t, map.bn), (9, 4));
        // Right + NoTrans flips; upper flipped becomes lower → not reversed.
        assert!(map.flip);
        assert!(!map.reversed);
    }

    #[test]
    fn block_decomposition_shapes() {
        assert_eq!(block_decomposition(3, 4, 5), vec![(0, 3)]);
        assert_eq!(block_decomposition(5, 4, 5), vec![(0, 5)]);
        assert_eq!(block_decomposition(6, 4, 5), vec![(0, 4), (4, 2)]);
        assert_eq!(block_decomposition(12, 4, 5), vec![(0, 4), (4, 4), (8, 4)]);
        assert_eq!(block_decomposition(0, 4, 5), vec![]);
        // complex parameters
        assert_eq!(block_decomposition(3, 2, 2), vec![(0, 2), (2, 1)]);
    }

    #[test]
    fn a_layout_offsets() {
        let blocks = block_decomposition(6, 4, 5);
        let (layout, total) = a_layout::<f64>(2, &blocks);
        let g = 2;
        // block 0: rect 0 groups, tri 10 groups; block 1: rect 4·2=8, tri 3.
        assert_eq!(layout[0].rect_off, 0);
        assert_eq!(layout[0].tri_off, 0);
        assert_eq!(layout[1].rect_off, 10 * g);
        assert_eq!(layout[1].tri_off, (10 + 8) * g);
        assert_eq!(total, (10 + 8 + 3) * g);
        // the same decomposition at a wider factor scales every offset
        let (wide, wide_total) = a_layout::<f64>(8, &blocks);
        assert_eq!(wide[1].rect_off, 4 * layout[1].rect_off);
        assert_eq!(wide_total, 4 * total);
    }

    #[test]
    fn packed_triangle_has_reciprocal_diagonal() {
        let t = 5usize;
        let std = StdBatch::<f64>::random_triangular(t, 2, Uplo::Lower, Diag::NonUnit, 3);
        let compact = CompactBatch::from_std_at(&std, W);
        let map = TrsmIndexMap::new(TrsmMode::LNLN, false, t, 3);
        let blocks = block_decomposition(t, 4, 5);
        let (layout, total) = a_layout::<f64>(compact.p(), &blocks);
        let mut dst = vec![0.0f64; total];
        pack_a_trsm::<f64>(
            &mut dst,
            compact.pack_slice(0),
            compact.rows(),
            compact.p(),
            &map,
            &layout,
            2,
        );
        // single block (t=5 ≤ 5): triangle rows at tri_off
        let blk = layout[0];
        for i in 0..t {
            let base = blk.tri_off + (i * (i + 1) / 2) * 2;
            for j in 0..i {
                for lane in 0..2 {
                    assert_eq!(dst[base + j * 2 + lane], std.get(lane, i, j));
                }
            }
            for lane in 0..2 {
                let want = 1.0 / std.get(lane, i, i);
                assert!((dst[base + i * 2 + lane] - want).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn unit_diag_never_reads_stored_diagonal() {
        // random_triangular poisons the diagonal under Unit; packing must
        // still produce reciprocal 1.
        let std = StdBatch::<f64>::random_triangular(4, 2, Uplo::Lower, Diag::Unit, 9);
        let compact = CompactBatch::from_std_at(&std, W);
        let mode = TrsmMode::new(Side::Left, Trans::No, Uplo::Lower, Diag::Unit);
        let map = TrsmIndexMap::new(mode, false, 4, 2);
        let (layout, total) = a_layout::<f64>(2, &block_decomposition(4, 4, 5));
        let mut dst = vec![0.0f64; total];
        pack_a_trsm::<f64>(
            &mut dst,
            compact.pack_slice(0),
            compact.rows(),
            2,
            &map,
            &layout,
            2,
        );
        let blk = layout[0];
        for i in 0..4 {
            let base = blk.tri_off + (i * (i + 1) / 2 + i) * 2;
            assert_eq!(&dst[base..base + 2], &[1.0, 1.0]);
        }
    }

    #[test]
    fn padding_lane_diag_is_one() {
        let std = StdBatch::<f64>::random_triangular(3, 1, Uplo::Lower, Diag::NonUnit, 4);
        let compact = CompactBatch::from_std_at(&std, W); // P=2 → 1 padding lane
        let map = TrsmIndexMap::new(TrsmMode::LNLN, false, 3, 2);
        let (layout, total) = a_layout::<f64>(2, &block_decomposition(3, 4, 5));
        let mut dst = vec![0.0f64; total];
        pack_a_trsm::<f64>(
            &mut dst,
            compact.pack_slice(0),
            compact.rows(),
            2,
            &map,
            &layout,
            1,
        );
        let blk = layout[0];
        for i in 0..3 {
            let base = blk.tri_off + (i * (i + 1) / 2 + i) * 2;
            assert!((dst[base] - 1.0 / std.get(0, i, i)).abs() < 1e-15);
            assert_eq!(dst[base + 1], 1.0); // padding lane
        }
    }

    #[test]
    fn complex_reciprocal() {
        let t = 2usize;
        let std = StdBatch::<c64>::random_triangular(t, 2, Uplo::Lower, Diag::NonUnit, 5);
        let compact = CompactBatch::from_std_at(&std, W);
        let map = TrsmIndexMap::new(TrsmMode::LNLN, false, t, 1);
        let (layout, total) = a_layout::<c64>(2, &block_decomposition(t, 2, 2));
        let mut dst = vec![0.0f64; total];
        pack_a_trsm::<c64>(
            &mut dst,
            compact.pack_slice(0),
            compact.rows(),
            2,
            &map,
            &layout,
            2,
        );
        let blk = layout[0];
        for i in 0..t {
            let base = blk.tri_off + (i * (i + 1) / 2 + i) * 4;
            for lane in 0..2 {
                let d = std.get(lane, i, i);
                let want = d.recip();
                assert!((dst[base + lane] - want.re).abs() < 1e-14);
                assert!((dst[base + 2 + lane] - want.im).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn b_panel_roundtrip_with_alpha() {
        for mode in TrsmMode::all() {
            let (m, n) = (5usize, 6usize);
            let std = StdBatch::<f64>::random(m, n, 2, 77);
            let compact = CompactBatch::from_std_at(&std, W);
            let map = TrsmIndexMap::new(mode, false, m, n);
            let w = 3.min(map.bn);
            let mut panel = vec![0.0f64; panel_b_len::<f64>(2, map.t, w)];
            pack_b_panel(
                &mut panel,
                compact.pack_slice(0),
                compact.rows(),
                2,
                &map,
                0,
                w,
                2.0,
            );
            // every packed value is 2× its source
            for i in 0..map.t {
                for j in 0..w {
                    let (r, c) = map.b_src(i, j);
                    for lane in 0..2 {
                        let got = panel[(i * w + j) * 2 + lane];
                        assert_eq!(got, 2.0 * std.get(lane, r, c), "{mode}");
                    }
                }
            }
            // unpack writes back to the mapped positions
            let mut out = CompactBatch::<f64>::zeroed_at(m, n, 2, W);
            unpack_b_panel::<f64>(&panel, out.pack_slice_mut(0), 5, 2, &map, 0, w);
            for i in 0..map.t {
                for j in 0..w {
                    let (r, c) = map.b_src(i, j);
                    for lane in 0..2 {
                        assert_eq!(out.get(lane, r, c), 2.0 * std.get(lane, r, c), "{mode}");
                    }
                }
            }
        }
    }

    #[test]
    fn complex_alpha_scaling() {
        let std = StdBatch::<c64>::random(2, 2, 2, 13);
        let compact = CompactBatch::from_std_at(&std, W);
        let map = TrsmIndexMap::new(TrsmMode::LNLN, false, 2, 2);
        let alpha = c64::new(0.0, 1.0); // multiply by i
        let mut panel = vec![0.0f64; panel_b_len::<c64>(2, 2, 2)];
        pack_b_panel(
            &mut panel,
            compact.pack_slice(0),
            compact.rows(),
            2,
            &map,
            0,
            2,
            alpha,
        );
        for i in 0..2 {
            for j in 0..2 {
                for lane in 0..2 {
                    let src = std.get(lane, i, j);
                    let got_re = panel[(i * 2 + j) * 4 + lane];
                    let got_im = panel[(i * 2 + j) * 4 + 2 + lane];
                    // i·(a+bi) = -b + ai
                    assert!((got_re + src.im).abs() < 1e-15);
                    assert!((got_im - src.re).abs() < 1e-15);
                }
            }
        }
    }
}
