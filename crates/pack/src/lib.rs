//! Data packing kernels (paper §4.4).
//!
//! Packing serves one purpose in IATF: make the computing kernel's memory
//! accesses contiguous. Under the compact layout the unit of copying is an
//! *element group* (one or two SIMD vectors), so every copy is at least a
//! vector wide — the paper's "use the memcpy function to minimize the
//! overhead caused by data packing".
//!
//! Beyond contiguity, the packing kernels are where *all* input modes are
//! normalized (paper §5.2: "It matches appropriate data packing kernels for
//! different modes to pack matrices into the same order, so that only one
//! computational kernel is needed to handle all modes"):
//!
//! * GEMM: transpose (and conjugation) are folded into the gather order —
//!   the kernels always see an `m_r`-sliver A panel and an `n_r`-sliver B
//!   panel ([`gemm`]).
//! * TRSM: side, uplo, transpose and diagonal kind are folded into an index
//!   map ([`trsm::TrsmIndexMap`]) such that the computing kernel always
//!   solves *left–lower–non-transposed* systems; diagonal entries are stored
//!   as reciprocals so the kernel never divides ([`trsm`]).
//!
//! The *no-pack* strategy (§4.4) is represented by [`gemm::direct_strides`]:
//! because the compute kernels take runtime strides, any non-conjugated
//! operand can be streamed straight out of the compact layout; the run-time
//! stage's Pack Selecter decides when that is profitable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]

pub mod arena;
pub mod buffer;
pub mod gemm;
pub mod trsm;

pub use arena::ArenaLease;
pub use buffer::PackBuffer;
