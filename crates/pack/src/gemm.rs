//! GEMM packing kernels (N-shaped A panels, Z-shaped B panels — paper
//! Figure 6) and the no-pack direct-access strides.
//!
//! Panel formats consumed by `iatf_kernels::gemm_ukr`:
//!
//! * **A panel** — row tiles of height ≤ `m_r` in row order ("N-shape": the
//!   panel walks down A's rows, and within a tile across K). Tile starting
//!   at row `i0` begins at scalar offset `i0 · K · g`; inside, sliver
//!   `k` holds the tile's `h` element groups contiguously
//!   (`a_i = g`, `a_k = h·g`).
//! * **B panel** — column tiles of width ≤ `n_r` ("Z-shape": across the
//!   columns of a tile, then down K). Tile at column `j0` begins at
//!   `j0 · K · g`; sliver `k` holds `w` groups (`b_j = g`, `b_k = w·g`).
//!
//! Here `g = p · SCALARS` is the element-group size and `p` the
//! interleaving factor of the batch's vector width — a *runtime* value
//! ([`CompactBatch::p`]), so the same packers serve 128/256/512-bit
//! layouts. The pure-geometry helpers take `p` explicitly; the data movers
//! read it off the source batch.
//!
//! Transposition (and complex conjugation) happen during the gather, so the
//! computing kernel is mode-oblivious.

use iatf_layout::{CompactBatch, Trans};
use iatf_simd::Element;

/// Element-group size for interleaving factor `p`.
#[inline]
pub fn group_len<E: Element>(p: usize) -> usize {
    p * E::SCALARS
}

/// Scalar length of a packed A panel for an `m × k` operand at
/// interleaving factor `p`.
pub fn panel_a_len<E: Element>(p: usize, m: usize, k: usize) -> usize {
    m * k * group_len::<E>(p)
}

/// Scalar length of a packed B panel for a `k × n` operand.
pub fn panel_b_len<E: Element>(p: usize, k: usize, n: usize) -> usize {
    k * n * group_len::<E>(p)
}

/// Scalar offset of the A tile starting at op-row `i0`.
pub fn a_tile_offset<E: Element>(p: usize, i0: usize, k: usize) -> usize {
    i0 * k * group_len::<E>(p)
}

/// Scalar offset of the B tile starting at op-column `j0`.
pub fn b_tile_offset<E: Element>(p: usize, j0: usize, k: usize) -> usize {
    j0 * k * group_len::<E>(p)
}

#[inline]
fn conj_groups<E: Element>(p: usize, dst: &mut [E::Real]) {
    if !E::IS_COMPLEX {
        return;
    }
    for group in dst.chunks_exact_mut(2 * p) {
        for x in &mut group[p..] {
            *x = -*x;
        }
    }
}

/// Packs one pack's A operand into N-shaped panels.
///
/// `m`/`k` are the dimensions of `op(A)`; `mr` is the tile height (the main
/// kernel's `m_r`). `conj` conjugates complex data during the copy. Group
/// geometry comes from `src` (its vector width).
#[allow(clippy::too_many_arguments)]
pub fn pack_a<E: Element>(
    dst: &mut [E::Real],
    src: &CompactBatch<E>,
    pack: usize,
    trans: Trans,
    conj: bool,
    mr: usize,
    m: usize,
    k: usize,
) {
    let g = src.group();
    let rows = src.rows();
    let sp = src.pack_slice(pack);
    debug_assert!(dst.len() >= panel_a_len::<E>(src.p(), m, k));

    let mut out = 0usize;
    let mut i0 = 0usize;
    while i0 < m {
        let h = mr.min(m - i0);
        match trans {
            Trans::No => {
                // Stored rows i0..i0+h of column kk are contiguous: one
                // memcpy per sliver (the paper's vector-at-a-time copies).
                for kk in 0..k {
                    let s = (kk * rows + i0) * g;
                    dst[out..out + h * g].copy_from_slice(&sp[s..s + h * g]);
                    out += h * g;
                }
            }
            Trans::Yes => {
                // op(A)(i, kk) = A(kk, i): gather one group per element.
                for kk in 0..k {
                    for i in 0..h {
                        let s = ((i0 + i) * rows + kk) * g;
                        dst[out..out + g].copy_from_slice(&sp[s..s + g]);
                        out += g;
                    }
                }
            }
        }
        let tile = &mut dst[out - h * k * g..out];
        if conj {
            conj_groups::<E>(src.p(), tile);
        }
        i0 += h;
    }
}

/// Packs one pack's B operand into Z-shaped panels.
///
/// `k`/`n` are the dimensions of `op(B)`; `nr` is the tile width.
#[allow(clippy::too_many_arguments)]
pub fn pack_b<E: Element>(
    dst: &mut [E::Real],
    src: &CompactBatch<E>,
    pack: usize,
    trans: Trans,
    conj: bool,
    nr: usize,
    k: usize,
    n: usize,
) {
    let g = src.group();
    let rows = src.rows();
    let sp = src.pack_slice(pack);
    debug_assert!(dst.len() >= panel_b_len::<E>(src.p(), k, n));

    let mut out = 0usize;
    let mut j0 = 0usize;
    while j0 < n {
        let w = nr.min(n - j0);
        match trans {
            Trans::No => {
                // op(B)(kk, j) = B(kk, j0+j): gather one group per column.
                for kk in 0..k {
                    for j in 0..w {
                        let s = ((j0 + j) * rows + kk) * g;
                        dst[out..out + g].copy_from_slice(&sp[s..s + g]);
                        out += g;
                    }
                }
            }
            Trans::Yes => {
                // Stored B(j0..j0+w, kk) is contiguous: memcpy per sliver.
                for kk in 0..k {
                    let s = (kk * rows + j0) * g;
                    dst[out..out + w * g].copy_from_slice(&sp[s..s + w * g]);
                    out += w * g;
                }
            }
        }
        let tile = &mut dst[out - w * k * g..out];
        if conj {
            conj_groups::<E>(src.p(), tile);
        }
        j0 += w;
    }
}

/// Direct (no-pack) access description for one GEMM operand: the compute
/// kernels take runtime strides, so a non-conjugated operand can be streamed
/// straight from the compact layout (paper §4.4's no-packing strategy).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DirectAccess {
    /// Scalar offset of the tile starting at minor index `t`: `t · tile_scale`.
    pub tile_scale: usize,
    /// Stride between consecutive rows (A) / columns (B) of the op-operand.
    pub minor: usize,
    /// Stride between consecutive K steps.
    pub step_k: usize,
}

/// Direct-access strides for `op(A)` stored as a `rows × cols` compact
/// matrix at interleaving factor `p`.
pub fn direct_a<E: Element>(p: usize, trans: Trans, rows: usize) -> DirectAccess {
    let g = group_len::<E>(p);
    match trans {
        Trans::No => DirectAccess {
            tile_scale: g,
            minor: g,
            step_k: rows * g,
        },
        Trans::Yes => DirectAccess {
            tile_scale: rows * g,
            minor: rows * g,
            step_k: g,
        },
    }
}

/// Direct-access strides for `op(B)` stored as a `rows × cols` compact
/// matrix at interleaving factor `p`.
pub fn direct_b<E: Element>(p: usize, trans: Trans, rows: usize) -> DirectAccess {
    let g = group_len::<E>(p);
    match trans {
        Trans::No => DirectAccess {
            tile_scale: rows * g,
            minor: rows * g,
            step_k: g,
        },
        Trans::Yes => DirectAccess {
            tile_scale: g,
            minor: g,
            step_k: rows * g,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_layout::StdBatch;
    use iatf_simd::{c32, c64, Element, Real, VecWidth};

    /// Scalar view of op(A)(i, kk) for logical matrix v.
    fn op_elem<E: Element>(
        src: &StdBatch<E>,
        v: usize,
        trans: Trans,
        conj: bool,
        i: usize,
        kk: usize,
    ) -> E {
        let raw = match trans {
            Trans::No => src.get(v, i, kk),
            Trans::Yes => src.get(v, kk, i),
        };
        if conj {
            E::from_f64s(raw.re().to_f64(), -raw.im().to_f64())
        } else {
            raw
        }
    }

    fn check_pack_a<E: Element>(
        width: VecWidth,
        m: usize,
        k: usize,
        mr: usize,
        trans: Trans,
        conj: bool,
    ) {
        let (rows, cols) = match trans {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let p = E::p_at(width);
        let count = p + 1; // force a padded pack too
        let std = StdBatch::<E>::random(rows, cols, count, 42);
        let compact = CompactBatch::from_std_at(&std, width);
        let g = compact.group();
        let mut dst = vec![E::Real::ZERO; panel_a_len::<E>(p, m, k)];
        for pack in 0..compact.packs() {
            pack_a(&mut dst, &compact, pack, trans, conj, mr, m, k);
            // walk the panel layout and compare each lane
            let mut i0 = 0;
            let mut off = 0usize;
            while i0 < m {
                let h = mr.min(m - i0);
                for kk in 0..k {
                    for i in 0..h {
                        for lane in 0..p {
                            let v = pack * p + lane;
                            let (want_re, want_im) = if v < count {
                                let e = op_elem(&std, v, trans, conj, i0 + i, kk);
                                (e.re().to_f64(), e.im().to_f64())
                            } else {
                                (0.0, 0.0)
                            };
                            let got_re = dst[off + lane].to_f64();
                            assert_eq!(got_re, want_re, "re {trans:?} i={} k={kk}", i0 + i);
                            if E::IS_COMPLEX {
                                let got_im = dst[off + p + lane].to_f64();
                                assert_eq!(got_im, want_im, "im {trans:?}");
                            }
                        }
                        off += g;
                    }
                }
                i0 += h;
            }
        }
    }

    fn check_pack_b<E: Element>(
        width: VecWidth,
        k: usize,
        n: usize,
        nr: usize,
        trans: Trans,
        conj: bool,
    ) {
        let (rows, cols) = match trans {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let p = E::p_at(width);
        let count = 2 * p;
        let std = StdBatch::<E>::random(rows, cols, count, 7);
        let compact = CompactBatch::from_std_at(&std, width);
        let g = compact.group();
        let mut dst = vec![E::Real::ZERO; panel_b_len::<E>(p, k, n)];
        for pack in 0..compact.packs() {
            pack_b(&mut dst, &compact, pack, trans, conj, nr, k, n);
            let mut j0 = 0;
            let mut off = 0usize;
            while j0 < n {
                let w = nr.min(n - j0);
                for kk in 0..k {
                    for j in 0..w {
                        for lane in 0..p {
                            let v = pack * p + lane;
                            // op(B)(kk, j): trans=No reads stored (kk, j),
                            // i.e. the flipped index order of op_elem.
                            let e = op_elem(&std, v, trans.flip(), conj, j0 + j, kk);
                            let got = dst[off + lane].to_f64();
                            assert_eq!(got, e.re().to_f64(), "B {trans:?} j={} k={kk}", j0 + j);
                            if E::IS_COMPLEX {
                                assert_eq!(dst[off + p + lane].to_f64(), e.im().to_f64());
                            }
                        }
                        off += g;
                    }
                }
                j0 += w;
            }
        }
    }

    #[test]
    fn pack_a_all_modes_real() {
        for width in VecWidth::ALL {
            for trans in Trans::ALL {
                check_pack_a::<f32>(width, 7, 5, 4, trans, false);
                check_pack_a::<f64>(width, 4, 9, 4, trans, false);
                check_pack_a::<f64>(width, 1, 1, 4, trans, false);
                check_pack_a::<f32>(width, 13, 3, 4, trans, false);
            }
        }
    }

    #[test]
    fn pack_a_complex_with_conjugation() {
        for width in VecWidth::ALL {
            for trans in Trans::ALL {
                for conj in [false, true] {
                    check_pack_a::<c32>(width, 5, 4, 3, trans, conj);
                    check_pack_a::<c64>(width, 6, 3, 3, trans, conj);
                }
            }
        }
    }

    #[test]
    fn pack_b_all_modes() {
        for width in VecWidth::ALL {
            for trans in Trans::ALL {
                check_pack_b::<f32>(width, 5, 7, 4, trans, false);
                check_pack_b::<f64>(width, 9, 4, 4, trans, false);
                check_pack_b::<c64>(width, 3, 5, 2, trans, true);
                check_pack_b::<c32>(width, 4, 2, 2, trans, false);
            }
        }
    }

    #[test]
    fn direct_strides_address_same_elements() {
        // Reading through DirectAccess must reproduce op(A)(i, kk).
        // Pinned to W128 (P=2 for f64) so lane indexing stays explicit.
        let std = StdBatch::<f64>::random(5, 4, 2, 9);
        let compact = CompactBatch::from_std_at(&std, VecWidth::W128);
        for trans in Trans::ALL {
            let (m, k) = match trans {
                Trans::No => (5usize, 4usize),
                Trans::Yes => (4, 5),
            };
            let acc = direct_a::<f64>(compact.p(), trans, compact.rows());
            let sp = compact.pack_slice(0);
            for i0 in 0..m {
                for kk in 0..k {
                    let off = i0 * acc.tile_scale + kk * acc.step_k;
                    for lane in 0..2 {
                        let want = match trans {
                            Trans::No => std.get(lane, i0, kk),
                            Trans::Yes => std.get(lane, kk, i0),
                        };
                        assert_eq!(sp[off + lane], want, "{trans:?} ({i0},{kk})");
                    }
                }
            }
        }
    }

    #[test]
    fn direct_b_strides_address_same_elements() {
        let std = StdBatch::<f32>::random(3, 6, 4, 21);
        let compact = CompactBatch::from_std_at(&std, VecWidth::W128);
        for trans in Trans::ALL {
            let (k, n) = match trans {
                Trans::No => (3usize, 6usize),
                Trans::Yes => (6, 3),
            };
            let acc = direct_b::<f32>(compact.p(), trans, compact.rows());
            let sp = compact.pack_slice(0);
            for j0 in 0..n {
                for kk in 0..k {
                    let off = j0 * acc.tile_scale + kk * acc.step_k;
                    for lane in 0..4 {
                        let want = match trans {
                            Trans::No => std.get(lane, kk, j0),
                            Trans::Yes => std.get(lane, j0, kk),
                        };
                        assert_eq!(sp[off + lane], want, "{trans:?} ({kk},{j0})");
                    }
                }
            }
        }
    }

    #[test]
    fn tile_offsets() {
        assert_eq!(a_tile_offset::<f32>(4, 4, 7), 4 * 7 * 4);
        assert_eq!(a_tile_offset::<f32>(8, 4, 7), 4 * 7 * 8);
        assert_eq!(b_tile_offset::<c64>(2, 2, 5), 2 * 5 * 4);
        assert_eq!(panel_a_len::<f64>(2, 3, 4), 24);
        assert_eq!(panel_a_len::<f64>(8, 3, 4), 96);
        assert_eq!(panel_b_len::<c32>(4, 3, 4), 96);
    }
}
