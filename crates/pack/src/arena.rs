//! Thread-local pack-buffer arena.
//!
//! Every `execute()` needs scratch for packed panels. Allocating (and
//! first-touch zero-filling) that scratch per call would dominate the
//! dispatch cost of small problems — exactly the overhead the paper's
//! amortized run-time stage is built to avoid. The arena keeps returned
//! [`PackBuffer`] storage in a small per-thread pool so that, after one
//! warmup call per thread, repeated executes are malloc-free: a lease pops
//! the largest warm buffer (its initialized prefix is reused without
//! re-zeroing), and dropping the lease pushes the storage back.
//!
//! Thread-locality makes the pool lock-free and keeps each worker's
//! packing working set in its own L1, matching the parallel executor's
//! one-superblock-per-task partitioning. The pool is keyed by scalar type
//! (`f32`/`f64` for the four BLAS precisions) through `TypeId`, so one
//! fully safe implementation serves every element type.

use crate::PackBuffer;
use iatf_simd::Real;
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Warm buffers kept per scalar type per thread; beyond this, returned
/// storage is simply freed. Serial executes use one buffer; nested or
/// re-entrant use (plans executing from multiple scopes on one thread)
/// stays within a handful.
const POOL_CAP: usize = 8;

thread_local! {
    static POOLS: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> =
        RefCell::new(HashMap::new());
}

/// Exclusive lease on a pooled [`PackBuffer`]; returns the storage to the
/// current thread's pool on drop.
#[derive(Debug)]
pub struct ArenaLease<R: Real> {
    buf: PackBuffer<R>,
}

impl<R: Real> ArenaLease<R> {
    /// The leased buffer.
    pub fn buffer(&mut self) -> &mut PackBuffer<R> {
        &mut self.buf
    }
}

impl<R: Real> Drop for ArenaLease<R> {
    fn drop(&mut self) {
        let storage = core::mem::take(&mut self.buf).into_vec();
        if storage.capacity() == 0 {
            return;
        }
        POOLS.with(|pools| {
            let mut pools = pools.borrow_mut();
            let pool = pools.entry(TypeId::of::<R>()).or_default();
            if pool.len() < POOL_CAP {
                pool.push(Box::new(storage));
            }
        });
    }
}

/// Takes a buffer from the current thread's pool (the one with the most
/// initialized storage), or a fresh empty buffer when the pool is cold.
pub fn lease<R: Real>() -> ArenaLease<R> {
    let storage: Vec<R> = POOLS.with(|pools| {
        let mut pools = pools.borrow_mut();
        let pool = pools.entry(TypeId::of::<R>()).or_default();
        // largest first: one warm buffer serves every panel size seen so far
        let best = (0..pool.len()).max_by_key(|&i| {
            pool[i]
                .downcast_ref::<Vec<R>>()
                .map_or(0, |v| v.len())
        });
        best.map(|i| {
            *pool
                .swap_remove(i)
                .downcast::<Vec<R>>()
                .expect("arena pool entries are keyed by TypeId")
        })
        .unwrap_or_default()
    });
    iatf_obs::count_arena_lease(storage.len() * core::mem::size_of::<R>());
    ArenaLease {
        buf: PackBuffer::from_vec(storage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_storage_per_thread() {
        // drain any warm buffers so the test starts cold
        POOLS.with(|p| p.borrow_mut().remove(&TypeId::of::<f64>()));
        {
            let mut l = lease::<f64>();
            let s = l.buffer().get_mut(100);
            s[99] = 7.0;
        }
        // the warm buffer comes back with its contents intact (no refill)
        let mut l = lease::<f64>();
        assert_eq!(l.buffer().len(), 100);
        assert_eq!(l.buffer().get(100)[99], 7.0);
    }

    #[test]
    fn largest_buffer_is_preferred() {
        POOLS.with(|p| p.borrow_mut().remove(&TypeId::of::<f32>()));
        {
            let mut small = lease::<f32>();
            small.buffer().reserve(10);
            let mut big = lease::<f32>();
            big.buffer().reserve(1000);
        }
        let mut l = lease::<f32>();
        assert_eq!(l.buffer().len(), 1000);
    }

    #[test]
    fn precisions_do_not_mix() {
        POOLS.with(|p| {
            let mut p = p.borrow_mut();
            p.remove(&TypeId::of::<f32>());
            p.remove(&TypeId::of::<f64>());
        });
        {
            let mut l = lease::<f64>();
            l.buffer().reserve(64);
        }
        let mut l = lease::<f32>();
        assert_eq!(l.buffer().len(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        POOLS.with(|p| p.borrow_mut().remove(&TypeId::of::<f64>()));
        let leases: Vec<_> = (0..POOL_CAP + 5)
            .map(|_| {
                let mut l = lease::<f64>();
                l.buffer().reserve(8);
                l
            })
            .collect();
        drop(leases);
        let pooled = POOLS.with(|p| {
            p.borrow()
                .get(&TypeId::of::<f64>())
                .map_or(0, |v| v.len())
        });
        assert_eq!(pooled, POOL_CAP);
    }
}
