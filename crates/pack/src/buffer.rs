//! Reusable packing buffer.

use iatf_simd::Real;

/// A growable scratch buffer for packed panels.
///
/// Execution plans reuse one buffer across all super-blocks so the packing
/// traffic stays in the same L1-resident working set (the Batch Counter
/// sizes the per-super-block footprint to the L1 capacity).
///
/// Growth semantics matter on the hot path: storage is zero-filled only on
/// **first touch** ([`PackBuffer::reserve`] extends with zeros exactly once
/// per new scalar), and already-owned storage is handed back as-is —
/// packing overwrites what it uses, so re-zeroing a warm buffer on every
/// `execute` would be pure waste. Combined with the [`crate::arena`] pool,
/// steady-state executes neither allocate nor memset.
#[derive(Debug, Default)]
pub struct PackBuffer<R> {
    data: Vec<R>,
}

impl<R: Real> PackBuffer<R> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates a buffer with `len` scalars already initialized.
    pub fn with_len(len: usize) -> Self {
        let mut buf = Self::new();
        buf.reserve(len);
        buf
    }

    /// Wraps storage recycled from a previous buffer (see [`crate::arena`]);
    /// its initialized prefix is reused without re-zero-filling.
    pub fn from_vec(data: Vec<R>) -> Self {
        Self { data }
    }

    /// Consumes the buffer, yielding its storage for later reuse.
    pub fn into_vec(self) -> Vec<R> {
        self.data
    }

    /// Ensures at least `len` scalars are initialized. Zero fill happens
    /// only for the newly grown tail — never for storage the buffer already
    /// owns (first-touch-only semantics).
    pub fn reserve(&mut self, len: usize) {
        if self.data.len() < len {
            let grown = len - self.data.len();
            self.data.resize(len, R::ZERO);
            iatf_obs::count_arena_bytes_grown(grown * core::mem::size_of::<R>());
        }
    }

    /// Ensures at least `len` scalars are available and returns the slice.
    /// Contents are unspecified (packing overwrites what it uses).
    pub fn get_mut(&mut self, len: usize) -> &mut [R] {
        self.reserve(len);
        &mut self.data[..len]
    }

    /// Read-only view of the first `len` scalars.
    pub fn get(&self, len: usize) -> &[R] {
        &self.data[..len]
    }

    /// Current initialized length in scalars.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Splits into two disjoint mutable regions of `a_len` and `b_len`
    /// scalars (grows as needed) — one allocation for the A and B panels of
    /// a super-block.
    pub fn split_two(&mut self, a_len: usize, b_len: usize) -> (&mut [R], &mut [R]) {
        self.reserve(a_len + b_len);
        let (a, rest) = self.data.split_at_mut(a_len);
        (a, &mut rest[..b_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_reuses() {
        let mut buf = PackBuffer::<f64>::new();
        assert!(buf.is_empty());
        {
            let s = buf.get_mut(10);
            s[9] = 1.0;
        }
        assert_eq!(buf.len(), 10);
        {
            let s = buf.get_mut(4); // no shrink
            s[0] = 2.0;
        }
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.get(10)[9], 1.0);
    }

    #[test]
    fn split_two_disjoint() {
        let mut buf = PackBuffer::<f32>::with_len(2);
        let (a, b) = buf.split_two(3, 5);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 5);
        a[2] = 7.0;
        b[0] = 9.0;
        assert_eq!(buf.get(4)[2], 7.0);
        assert_eq!(buf.get(4)[3], 9.0);
    }

    #[test]
    fn reserve_never_clears_initialized_storage() {
        let mut buf = PackBuffer::<f32>::new();
        buf.get_mut(8).fill(3.0);
        // shrinking and re-growing within capacity must not zero anything
        buf.reserve(4);
        buf.reserve(8);
        assert!(buf.get(8).iter().all(|&x| x == 3.0));
        // growth zero-fills only the new tail
        buf.reserve(12);
        assert!(buf.get(12)[..8].iter().all(|&x| x == 3.0));
        assert!(buf.get(12)[8..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn storage_round_trips_through_vec() {
        let mut buf = PackBuffer::<f64>::new();
        buf.get_mut(6)[5] = 4.5;
        let v = buf.into_vec();
        let buf2 = PackBuffer::from_vec(v);
        assert_eq!(buf2.len(), 6);
        assert_eq!(buf2.get(6)[5], 4.5);
    }
}
