//! Reusable packing buffer.

use iatf_simd::Real;

/// A growable scratch buffer for packed panels.
///
/// Execution plans reuse one buffer across all super-blocks so the packing
/// traffic stays in the same L1-resident working set (the Batch Counter
/// sizes the per-super-block footprint to the L1 capacity).
#[derive(Debug, Default)]
pub struct PackBuffer<R> {
    data: Vec<R>,
}

impl<R: Real> PackBuffer<R> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates a buffer with capacity for `len` scalars.
    pub fn with_len(len: usize) -> Self {
        Self {
            data: vec![R::ZERO; len],
        }
    }

    /// Ensures at least `len` scalars are available and returns the slice.
    /// Contents are unspecified (packing overwrites what it uses).
    pub fn get_mut(&mut self, len: usize) -> &mut [R] {
        if self.data.len() < len {
            self.data.resize(len, R::ZERO);
        }
        &mut self.data[..len]
    }

    /// Read-only view of the first `len` scalars.
    pub fn get(&self, len: usize) -> &[R] {
        &self.data[..len]
    }

    /// Current capacity in scalars.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Splits into two disjoint mutable regions of `a_len` and `b_len`
    /// scalars (grows as needed) — one allocation for the A and B panels of
    /// a super-block.
    pub fn split_two(&mut self, a_len: usize, b_len: usize) -> (&mut [R], &mut [R]) {
        let total = a_len + b_len;
        if self.data.len() < total {
            self.data.resize(total, R::ZERO);
        }
        let (a, rest) = self.data.split_at_mut(a_len);
        (a, &mut rest[..b_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_reuses() {
        let mut buf = PackBuffer::<f64>::new();
        assert!(buf.is_empty());
        {
            let s = buf.get_mut(10);
            s[9] = 1.0;
        }
        assert_eq!(buf.len(), 10);
        {
            let s = buf.get_mut(4); // no shrink
            s[0] = 2.0;
        }
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.get(10)[9], 1.0);
    }

    #[test]
    fn split_two_disjoint() {
        let mut buf = PackBuffer::<f32>::with_len(2);
        let (a, b) = buf.split_two(3, 5);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 5);
        a[2] = 7.0;
        b[0] = 9.0;
        assert_eq!(buf.get(4)[2], 7.0);
        assert_eq!(buf.get(4)[3], 9.0);
    }
}
