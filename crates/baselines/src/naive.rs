//! Textbook scalar reference implementations — the correctness oracle for
//! the whole workspace. Deliberately simple; no attention to performance.

use iatf_layout::{Diag, GemmMode, Side, StdBatch, Trans, TrsmMode, Uplo};
use iatf_simd::{Element, Real};

/// Reference batched GEMM: `C = α·op(A)·op(B) + β·C` per matrix.
pub fn gemm_ref<E: Element>(
    mode: GemmMode,
    conj_a: bool,
    conj_b: bool,
    alpha: E,
    a: &StdBatch<E>,
    b: &StdBatch<E>,
    beta: E,
    c: &mut StdBatch<E>,
) {
    let (m, n) = c.shape();
    let k = match mode.transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    for v in 0..c.count() {
        for j in 0..n {
            for i in 0..m {
                let mut acc = E::zero();
                for l in 0..k {
                    let ae = op_get(a, v, mode.transa, conj_a, i, l);
                    let be = op_get(b, v, mode.transb, conj_b, l, j);
                    acc = acc.add(ae.mul(be));
                }
                let prior = c.get(v, i, j);
                c.set(v, i, j, alpha.mul(acc).add(beta.mul(prior)));
            }
        }
    }
}

fn op_get<E: Element>(
    x: &StdBatch<E>,
    v: usize,
    trans: Trans,
    conj: bool,
    i: usize,
    j: usize,
) -> E {
    let raw = match trans {
        Trans::No => x.get(v, i, j),
        Trans::Yes => x.get(v, j, i),
    };
    if conj {
        E::from_f64s(raw.re().to_f64(), -raw.im().to_f64())
    } else {
        raw
    }
}

/// Materializes `op(A)` of matrix `v` as a dense `t × t` row-major vector,
/// honoring uplo (unreferenced triangle read as zero) and diag (unit
/// diagonal read as one).
pub fn materialize_triangle<E: Element>(
    a: &StdBatch<E>,
    v: usize,
    trans: Trans,
    conj: bool,
    uplo: Uplo,
    diag: Diag,
) -> Vec<E> {
    let t = a.rows();
    assert_eq!(a.cols(), t, "triangular matrix must be square");
    let mut out = vec![E::zero(); t * t];
    for i in 0..t {
        for j in 0..t {
            // referenced iff within the stored triangle of the *stored*
            // matrix; op applies afterwards.
            let (si, sj) = match trans {
                Trans::No => (i, j),
                Trans::Yes => (j, i),
            };
            let stored = match uplo {
                Uplo::Lower => si >= sj,
                Uplo::Upper => si <= sj,
            };
            out[i * t + j] = if i == j && diag == Diag::Unit {
                E::one()
            } else if stored {
                op_get(a, v, trans, conj, i, j)
            } else {
                E::zero()
            };
        }
    }
    out
}

fn is_lower_after_op(trans: Trans, uplo: Uplo) -> bool {
    matches!(
        (trans, uplo),
        (Trans::No, Uplo::Lower) | (Trans::Yes, Uplo::Upper)
    )
}

/// Solves dense triangular `T·x = rhs` in place (`lower` selects forward or
/// backward substitution). `T` is `t × t` row-major.
fn solve_in_place<E: Element>(t_mat: &[E], t: usize, lower: bool, x: &mut [E]) {
    if lower {
        for i in 0..t {
            let mut acc = x[i];
            for j in 0..i {
                acc = acc.sub(t_mat[i * t + j].mul(x[j]));
            }
            x[i] = acc.mul(t_mat[i * t + i].recip());
        }
    } else {
        for i in (0..t).rev() {
            let mut acc = x[i];
            for j in i + 1..t {
                acc = acc.sub(t_mat[i * t + j].mul(x[j]));
            }
            x[i] = acc.mul(t_mat[i * t + i].recip());
        }
    }
}

/// Reference batched TRSM for all sixteen modes; B is overwritten by X.
pub fn trsm_ref<E: Element>(
    mode: TrsmMode,
    conj: bool,
    alpha: E,
    a: &StdBatch<E>,
    b: &mut StdBatch<E>,
) {
    let (m, n) = b.shape();
    let t = a.rows();
    match mode.side {
        Side::Left => assert_eq!(t, m),
        Side::Right => assert_eq!(t, n),
    }
    for v in 0..b.count() {
        let tm = materialize_triangle(a, v, mode.trans, conj, mode.uplo, mode.diag);
        let lower = is_lower_after_op(mode.trans, mode.uplo);
        match mode.side {
            Side::Left => {
                // op(A)·X = α·B: solve per column.
                let mut col = vec![E::zero(); m];
                for j in 0..n {
                    for i in 0..m {
                        col[i] = alpha.mul(b.get(v, i, j));
                    }
                    solve_in_place(&tm, t, lower, &mut col);
                    for i in 0..m {
                        b.set(v, i, j, col[i]);
                    }
                }
            }
            Side::Right => {
                // X·op(A) = α·B ⇔ op(A)ᵀ·Xᵀ = α·Bᵀ: solve per row with the
                // transposed triangle (flips lower/upper).
                let mut ttm = vec![E::zero(); t * t];
                for i in 0..t {
                    for j in 0..t {
                        ttm[i * t + j] = tm[j * t + i];
                    }
                }
                let mut row = vec![E::zero(); n];
                for i in 0..m {
                    for j in 0..n {
                        row[j] = alpha.mul(b.get(v, i, j));
                    }
                    solve_in_place(&ttm, t, !lower, &mut row);
                    for j in 0..n {
                        b.set(v, i, j, row[j]);
                    }
                }
            }
        }
    }
}

/// Reference batched TRMM for all sixteen modes; B is overwritten by
/// `α·op(A)·B` (left) or `α·B·op(A)` (right).
pub fn trmm_ref<E: Element>(
    mode: TrsmMode,
    conj: bool,
    alpha: E,
    a: &StdBatch<E>,
    b: &mut StdBatch<E>,
) {
    let (m, n) = b.shape();
    let t = a.rows();
    match mode.side {
        Side::Left => assert_eq!(t, m),
        Side::Right => assert_eq!(t, n),
    }
    for v in 0..b.count() {
        let tm = materialize_triangle(a, v, mode.trans, conj, mode.uplo, mode.diag);
        let mut out = vec![E::zero(); m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = E::zero();
                match mode.side {
                    Side::Left => {
                        for l in 0..t {
                            acc = acc.add(tm[i * t + l].mul(b.get(v, l, j)));
                        }
                    }
                    Side::Right => {
                        for l in 0..t {
                            acc = acc.add(b.get(v, i, l).mul(tm[l * t + j]));
                        }
                    }
                }
                out[j * m + i] = alpha.mul(acc);
            }
        }
        for j in 0..n {
            for i in 0..m {
                b.set(v, i, j, out[j * m + i]);
            }
        }
    }
}

/// ∞-norm residual of `op(A)·X − α·B` (left) or `X·op(A) − α·B` (right),
/// relative to the magnitudes involved — the TRSM acceptance metric used by
/// the integration tests.
pub fn trsm_residual<E: Element>(
    mode: TrsmMode,
    conj: bool,
    alpha: E,
    a: &StdBatch<E>,
    x: &StdBatch<E>,
    b0: &StdBatch<E>,
) -> f64 {
    let (m, n) = b0.shape();
    let t = a.rows();
    let mut worst = 0.0f64;
    for v in 0..b0.count() {
        let tm = materialize_triangle(a, v, mode.trans, conj, mode.uplo, mode.diag);
        for i in 0..m {
            for j in 0..n {
                let mut lhs = E::zero();
                match mode.side {
                    Side::Left => {
                        for l in 0..t {
                            lhs = lhs.add(tm[i * t + l].mul(x.get(v, l, j)));
                        }
                    }
                    Side::Right => {
                        for l in 0..t {
                            lhs = lhs.add(x.get(v, i, l).mul(tm[l * t + j]));
                        }
                    }
                }
                let rhs = alpha.mul(b0.get(v, i, j));
                let scale = lhs.abs_f64().max(rhs.abs_f64()).max(1.0);
                worst = worst.max(lhs.sub(rhs).abs_f64() / scale);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use iatf_simd::c64;

    #[test]
    fn gemm_identity() {
        // A = I ⇒ C = α·B + β·C
        let m = 3;
        let a = StdBatch::<f64>::from_fn(m, m, 2, |_, i, j| if i == j { 1.0 } else { 0.0 });
        let b = StdBatch::<f64>::random(m, m, 2, 4);
        let mut c = StdBatch::<f64>::zeroed(m, m, 2);
        gemm_ref(GemmMode::NN, false, false, 2.0, &a, &b, 0.0, &mut c);
        for v in 0..2 {
            for i in 0..m {
                for j in 0..m {
                    assert!((c.get(v, i, j) - 2.0 * b.get(v, i, j)).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency() {
        // (AᵀBᵀ)ᵀ = BA: check TT against NN with swapped operands.
        let a = StdBatch::<f64>::random(4, 3, 1, 11);
        let b = StdBatch::<f64>::random(5, 4, 1, 12);
        let mut c_tt = StdBatch::<f64>::zeroed(3, 5, 1);
        gemm_ref(GemmMode::TT, false, false, 1.0, &a, &b, 0.0, &mut c_tt);
        let mut c_nn = StdBatch::<f64>::zeroed(5, 3, 1);
        gemm_ref(GemmMode::NN, false, false, 1.0, &b, &a, 0.0, &mut c_nn);
        for i in 0..3 {
            for j in 0..5 {
                assert!((c_tt.get(0, i, j) - c_nn.get(0, j, i)).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn conjugation_applies() {
        let a = StdBatch::<c64>::from_fn(1, 1, 1, |_, _, _| c64::new(1.0, 2.0));
        let b = StdBatch::<c64>::from_fn(1, 1, 1, |_, _, _| c64::new(1.0, 0.0));
        let mut c = StdBatch::<c64>::zeroed(1, 1, 1);
        gemm_ref(GemmMode::NN, true, false, c64::one(), &a, &b, c64::zero(), &mut c);
        assert_eq!(c.get(0, 0, 0), c64::new(1.0, -2.0));
    }

    #[test]
    fn trsm_all_modes_residual_small() {
        for mode in TrsmMode::all() {
            let (m, n) = (6usize, 5usize);
            let t = if mode.side == Side::Left { m } else { n };
            let a = StdBatch::<f64>::random_triangular(t, 3, mode.uplo, mode.diag, 21);
            let b0 = StdBatch::<f64>::random(m, n, 3, 22);
            let mut x = b0.clone();
            trsm_ref(mode, false, 1.5, &a, &mut x);
            let r = trsm_residual(mode, false, 1.5, &a, &x, &b0);
            assert!(r < 1e-12, "{mode}: residual {r}");
        }
    }

    #[test]
    fn trsm_complex_modes() {
        for mode in [TrsmMode::LNLN, TrsmMode::LTUN] {
            let a = StdBatch::<c64>::random_triangular(5, 2, mode.uplo, mode.diag, 31);
            let b0 = StdBatch::<c64>::random(5, 4, 2, 32);
            let alpha = c64::new(0.5, -0.25);
            let mut x = b0.clone();
            trsm_ref(mode, true, alpha, &a, &mut x);
            let r = trsm_residual(mode, true, alpha, &a, &x, &b0);
            assert!(r < 1e-12, "{mode}: residual {r}");
        }
    }

    #[test]
    fn unit_diag_ignores_stored_diagonal() {
        // random_triangular poisons the diagonal under Unit; the solve must
        // still be clean.
        let mode = TrsmMode::new(Side::Left, Trans::No, Uplo::Lower, Diag::Unit);
        let a = StdBatch::<f64>::random_triangular(4, 1, Uplo::Lower, Diag::Unit, 8);
        let b0 = StdBatch::<f64>::random(4, 3, 1, 9);
        let mut x = b0.clone();
        trsm_ref(mode, false, 1.0, &a, &mut x);
        let r = trsm_residual(mode, false, 1.0, &a, &x, &b0);
        assert!(r < 1e-13, "residual {r}");
        assert!(x.as_slice().iter().all(|e| e.is_finite()));
    }
}
