//! Baseline batched BLAS implementations.
//!
//! The paper compares IATF against three ARMv8 libraries; this crate
//! provides faithful stand-ins with the same *structural* performance
//! characteristics, all operating on standard column-major batches
//! (`iatf_layout::StdBatch`):
//!
//! | paper baseline | module | structure |
//! |---|---|---|
//! | loop around OpenBLAS GEMM/TRSM calls | [`blasloop`] | Goto-style single-matrix kernels (M-vectorized, packed panels), full per-call dispatch/validation/buffer cost |
//! | ARMPL batched GEMM / TRSM loop | [`batched`] | same per-matrix kernels behind a batch interface: setup amortized, buffers reused across the group |
//! | LIBXSMM batched GEMM | [`specialized`] | shape-specialized no-pack kernels selected from a dispatch table built per shape (JIT stand-in); real GEMM only, like LIBXSMM |
//! | — (correctness oracle) | [`naive`] | textbook scalar reference for every mode |
//!
//! None of them use the SIMD-friendly compact layout — that is precisely the
//! variable the paper's comparison isolates.

#![warn(missing_docs)]
// BLAS-style signatures are inherently wide; indexed loops mirror the
// column-major addressing they implement.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod batched;
pub mod blasloop;
pub mod naive;
pub mod single;
pub mod specialized;
