//! Shape-specialized baseline — the paper's LIBXSMM comparison.
//!
//! LIBXSMM JIT-generates a kernel for the exact `(m, n, k)` shape and runs
//! it with no packing. The stand-in builds a dispatch descriptor per shape
//! ("code generation" at [`SpecializedGemm::new`]) and executes the group
//! with direct, no-copy access. Like LIBXSMM, it covers real GEMM only (the
//! paper: "it does not support a complex interface", "the TRSM is not
//! available in the LIBXSMM library").

use iatf_layout::{GemmMode, StdBatch, Trans};
use iatf_simd::{simd_for, Element, HasSimd, Real, SimdReal};

/// A "compiled" shape-specialized batched GEMM.
#[derive(Clone, Debug)]
pub struct SpecializedGemm {
    m: usize,
    n: usize,
    k: usize,
    mode: GemmMode,
    /// Whether the M dimension can use vector loads (A stored column-major
    /// in op orientation).
    vector_m: bool,
}

impl SpecializedGemm {
    /// Builds (conceptually: JIT-compiles) the kernel for a shape and mode.
    pub fn new(m: usize, n: usize, k: usize, mode: GemmMode) -> Self {
        Self {
            m,
            n,
            k,
            mode,
            vector_m: mode.transa == Trans::No,
        }
    }

    /// Runs the batch: `C = α·op(A)·op(B) + β·C`, no packing.
    pub fn execute<R: Real + HasSimd + Element>(
        &self,
        alpha: R,
        a: &StdBatch<R>,
        b: &StdBatch<R>,
        beta: R,
        c: &mut StdBatch<R>,
    ) {
        assert_eq!(c.shape(), (self.m, self.n));
        assert_eq!(a.count(), c.count());
        assert_eq!(b.count(), c.count());
        let lda = a.rows();
        let ldb = b.rows();
        for v in 0..c.count() {
            self.one(alpha, a.mat(v), lda, b.mat(v), ldb, beta, c.mat_mut(v));
        }
    }

    #[inline]
    fn b_elem<R: Real>(&self, bm: &[R], ldb: usize, kk: usize, j: usize) -> R {
        match self.mode.transb {
            Trans::No => bm[j * ldb + kk],
            Trans::Yes => bm[kk * ldb + j],
        }
    }

    fn one<R: Real + HasSimd + Element>(
        &self,
        alpha: R,
        am: &[R],
        lda: usize,
        bm: &[R],
        ldb: usize,
        beta: R,
        cm: &mut [R],
    ) {
        type V<R> = simd_for<R>;
        let lanes = V::<R>::LANES;
        let (m, n, k) = (self.m, self.n, self.k);
        let nr = 4usize;
        let mut j0 = 0;
        while j0 < n {
            let w = nr.min(n - j0);
            let mut i0 = 0;
            if self.vector_m {
                // direct vector loads down columns of A
                while i0 + lanes <= m {
                    let mut acc = [V::<R>::zero(); 4];
                    for kk in 0..k {
                        // SAFETY: `i0 + lanes <= m <= lda` (loop guard), so the lane load stays inside column `kk` of A.
                        let av = unsafe { V::<R>::load(am.as_ptr().add(kk * lda + i0)) };
                        for j in 0..w {
                            let bs = V::<R>::splat(self.b_elem(bm, ldb, kk, j0 + j));
                            acc[j] = acc[j].fma(av, bs);
                        }
                    }
                    for j in 0..w {
                        let idx = (j0 + j) * m + i0;
                        // SAFETY: `idx + lanes <= (j0+w)*m` because `i0 + lanes <= m`; the pointer stays inside the m×n C.
                        let ptr = unsafe { cm.as_mut_ptr().add(idx) };
                        let res = if beta == R::ZERO {
                            acc[j].mul(V::<R>::splat(alpha))
                        } else {
                            // SAFETY: same bound as `ptr` above — the load reads the C tile about to be overwritten.
                            let orig = unsafe { V::<R>::load(ptr) };
                            orig.mul(V::<R>::splat(beta)).fma(acc[j], V::<R>::splat(alpha))
                        };
                        // SAFETY: same bound as `ptr` above — the store writes the C tile just read.
                        unsafe { res.store(ptr) };
                    }
                    i0 += lanes;
                }
            }
            // scalar remainder (and the whole matrix for transposed A)
            for i in i0..m {
                for j in 0..w {
                    let mut acc = R::ZERO;
                    for kk in 0..k {
                        let ae = match self.mode.transa {
                            Trans::No => am[kk * lda + i],
                            Trans::Yes => am[i * lda + kk],
                        };
                        acc = Real::mul_add(acc, ae, self.b_elem(bm, ldb, kk, j0 + j));
                    }
                    let idx = (j0 + j) * m + i;
                    cm[idx] = if beta == R::ZERO {
                        alpha * acc
                    } else {
                        beta * cm[idx] + alpha * acc
                    };
                }
            }
            j0 += w;
        }
    }
}

/// Convenience one-shot wrapper.
pub fn gemm<R: Real + HasSimd + Element>(
    mode: GemmMode,
    alpha: R,
    a: &StdBatch<R>,
    b: &StdBatch<R>,
    beta: R,
    c: &mut StdBatch<R>,
) {
    let (m, n) = c.shape();
    let k = match mode.transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    SpecializedGemm::new(m, n, k, mode).execute(alpha, a, b, beta, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn matches_naive_all_modes() {
        for mode in GemmMode::ALL {
            for (m, n, k) in [(1usize, 1usize, 1usize), (4, 4, 4), (9, 6, 5), (17, 3, 8)] {
                let (ar, ac) = if mode.transa == Trans::No {
                    (m, k)
                } else {
                    (k, m)
                };
                let (br, bc) = if mode.transb == Trans::No {
                    (k, n)
                } else {
                    (n, k)
                };
                let a = StdBatch::<f32>::random(ar, ac, 3, 81);
                let b = StdBatch::<f32>::random(br, bc, 3, 82);
                let c0 = StdBatch::<f32>::random(m, n, 3, 83);
                let mut want = c0.clone();
                naive::gemm_ref(mode, false, false, 1.5, &a, &b, 0.25, &mut want);
                let mut got = c0.clone();
                gemm(mode, 1.5, &a, &b, 0.25, &mut got);
                assert!(want.max_abs_diff(&got) < 1e-3, "{mode} {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn f64_reusable_descriptor() {
        let plan = SpecializedGemm::new(8, 8, 8, GemmMode::NN);
        let a = StdBatch::<f64>::random(8, 8, 5, 91);
        let b = StdBatch::<f64>::random(8, 8, 5, 92);
        let mut want = StdBatch::<f64>::zeroed(8, 8, 5);
        naive::gemm_ref(GemmMode::NN, false, false, 1.0, &a, &b, 0.0, &mut want);
        let mut got = StdBatch::<f64>::zeroed(8, 8, 5);
        plan.execute(1.0, &a, &b, 0.0, &mut got);
        assert!(want.max_abs_diff(&got) < 1e-12);
        // reuse on new data
        let a2 = StdBatch::<f64>::random(8, 8, 5, 93);
        let mut got2 = StdBatch::<f64>::zeroed(8, 8, 5);
        plan.execute(1.0, &a2, &b, 0.0, &mut got2);
        let mut want2 = StdBatch::<f64>::zeroed(8, 8, 5);
        naive::gemm_ref(GemmMode::NN, false, false, 1.0, &a2, &b, 0.0, &mut want2);
        assert!(want2.max_abs_diff(&got2) < 1e-12);
    }
}
