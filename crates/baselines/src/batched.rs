//! Batch-interface baseline — the paper's ARMPL batched-GEMM comparison
//! (and the loop-around-ARMPL-TRSM comparison).
//!
//! Unlike [`crate::blasloop`], the interface sees the whole group at once:
//! validation runs once, packing scratch is allocated once and reused, and
//! the per-matrix kernels run back to back. Parallelization here is
//! *between* matrices, not within — crucially, **without** the SIMD-friendly
//! compact layout, which is the structural difference the paper's ARMPL
//! comparison isolates.

use crate::blasloop::BaselineElement;
use crate::single;
use iatf_layout::{GemmMode, Side, StdBatch, Trans, TrsmMode};
use iatf_simd::Element;

/// Batched GEMM with amortized setup and reused packing scratch.
pub fn gemm<E: BaselineElement>(
    mode: GemmMode,
    alpha: E,
    a: &StdBatch<E>,
    b: &StdBatch<E>,
    beta: E,
    c: &mut StdBatch<E>,
) {
    let (m, n) = c.shape();
    let k = match mode.transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    assert!(m > 0 && n > 0 && k > 0);
    assert_eq!(a.count(), c.count());
    assert_eq!(b.count(), c.count());
    let (ar, _) = a.shape();
    let (br, _) = b.shape();

    // one scratch allocation for the whole group
    let mut ap = vec![E::zero(); m * k];
    let mut bp = vec![E::zero(); k * n];
    for v in 0..c.count() {
        single::pack_op(&mut ap, a.mat(v), ar, m, k, mode.transa, false);
        single::pack_op(&mut bp, b.mat(v), br, k, n, mode.transb, false);
        E::smat_gemm(m, n, k, alpha, &ap, &bp, beta, c.mat_mut(v), m);
    }
}

/// Batched TRSM with amortized setup; solves run directly on the stored
/// triangle (no per-call packing pass).
pub fn trsm<E: Element>(mode: TrsmMode, alpha: E, a: &StdBatch<E>, b: &mut StdBatch<E>) {
    let (m, n) = b.shape();
    let t = a.rows();
    assert!(m > 0 && n > 0);
    assert_eq!(a.count(), b.count());
    for v in 0..b.count() {
        match mode.side {
            Side::Left => single::trsm_left(
                t,
                n,
                alpha,
                a.mat(v),
                t,
                mode.trans,
                false,
                mode.uplo,
                mode.diag,
                b.mat_mut(v),
                m,
            ),
            Side::Right => single::trsm_right(
                m,
                t,
                alpha,
                a.mat(v),
                t,
                mode.trans,
                false,
                mode.uplo,
                mode.diag,
                b.mat_mut(v),
                m,
            ),
        }
    }
}

/// Batched TRMM with amortized setup (scalar per-matrix triangular
/// multiply on the stored triangle) — the loop-library baseline for the
/// TRMM extension.
pub fn trmm<E: Element>(mode: TrsmMode, alpha: E, a: &StdBatch<E>, b: &mut StdBatch<E>) {
    let (m, n) = b.shape();
    let t = a.rows();
    assert_eq!(a.count(), b.count());
    let mut scratch = vec![E::zero(); m * n];
    for v in 0..b.count() {
        let tm = crate::naive::materialize_triangle(a, v, mode.trans, false, mode.uplo, mode.diag);
        for j in 0..n {
            for i in 0..m {
                let mut acc = E::zero();
                match mode.side {
                    Side::Left => {
                        for l in 0..t {
                            acc = acc.add(tm[i * t + l].mul(b.get(v, l, j)));
                        }
                    }
                    Side::Right => {
                        for l in 0..t {
                            acc = acc.add(b.get(v, i, l).mul(tm[l * t + j]));
                        }
                    }
                }
                scratch[j * m + i] = alpha.mul(acc);
            }
        }
        for j in 0..n {
            for i in 0..m {
                b.set(v, i, j, scratch[j * m + i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use iatf_simd::c64;

    #[test]
    fn gemm_matches_blasloop() {
        for mode in GemmMode::ALL {
            let (m, n, k) = (6usize, 5usize, 4usize);
            let (ar, ac) = if mode.transa == Trans::No {
                (m, k)
            } else {
                (k, m)
            };
            let (br, bc) = if mode.transb == Trans::No {
                (k, n)
            } else {
                (n, k)
            };
            let a = StdBatch::<f64>::random(ar, ac, 4, 61);
            let b = StdBatch::<f64>::random(br, bc, 4, 62);
            let c0 = StdBatch::<f64>::random(m, n, 4, 63);
            let mut via_loop = c0.clone();
            crate::blasloop::gemm(mode, 1.0, &a, &b, 0.5, &mut via_loop);
            let mut via_batch = c0.clone();
            gemm(mode, 1.0, &a, &b, 0.5, &mut via_batch);
            assert_eq!(via_loop.max_abs_diff(&via_batch), 0.0, "{mode}");
        }
    }

    #[test]
    fn trmm_matches_naive() {
        for mode in TrsmMode::all() {
            let (m, n) = (5usize, 6usize);
            let t = if mode.side == Side::Left { m } else { n };
            let a = StdBatch::<f64>::random_triangular(t, 2, mode.uplo, mode.diag, 91);
            let b0 = StdBatch::<f64>::random(m, n, 2, 92);
            let mut want = b0.clone();
            crate::naive::trmm_ref(mode, false, 1.5, &a, &mut want);
            let mut got = b0.clone();
            trmm(mode, 1.5, &a, &mut got);
            assert!(want.max_abs_diff(&got) < 1e-12, "{mode}");
        }
    }

    #[test]
    fn trsm_matches_naive() {
        for mode in TrsmMode::all() {
            let (m, n) = (4usize, 7usize);
            let t = if mode.side == Side::Left { m } else { n };
            let a = StdBatch::<c64>::random_triangular(t, 2, mode.uplo, mode.diag, 71);
            let b0 = StdBatch::<c64>::random(m, n, 2, 72);
            let alpha = c64::new(1.0, 0.5);
            let mut want = b0.clone();
            naive::trsm_ref(mode, false, alpha, &a, &mut want);
            let mut got = b0.clone();
            trsm(mode, alpha, &a, &mut got);
            assert!(want.max_abs_diff(&got) < 1e-11, "{mode}");
        }
    }
}
