//! Single-matrix building blocks shared by the baseline libraries: a
//! Goto-style M-vectorized GEMM kernel over one column-major matrix, scalar
//! complex kernels, and a scalar triangular solve.
//!
//! These model how a conventional BLAS processes *one* matrix: vectorize
//! down the M dimension, broadcast B, pack operands to normalize transposes
//! — which is precisely the structure whose SIMD efficiency collapses when
//! M is smaller than a vector (the paper's motivating observation).

use iatf_layout::{Diag, Trans, Uplo};
use iatf_simd::{simd_for, Element, HasSimd, Real, SimdReal};

/// Materializes `op(X)` (with optional conjugation) of one column-major
/// matrix into a dense column-major buffer of shape `rows_op × cols_op`.
pub fn pack_op<E: Element>(
    dst: &mut [E],
    src: &[E],
    ld: usize,
    rows_op: usize,
    cols_op: usize,
    trans: Trans,
    conj: bool,
) {
    debug_assert!(dst.len() >= rows_op * cols_op);
    for j in 0..cols_op {
        for i in 0..rows_op {
            let raw = match trans {
                Trans::No => src[j * ld + i],
                Trans::Yes => src[i * ld + j],
            };
            dst[j * rows_op + i] = if conj {
                E::from_f64s(raw.re().to_f64(), -raw.im().to_f64())
            } else {
                raw
            };
        }
    }
}

/// M-vectorized real GEMM on packed operands:
/// `C = α·Ap·Bp + β·C` where `Ap` is `m × k` and `Bp` is `k × n`, both
/// column-major and contiguous; C is column-major with leading dimension
/// `ldc`. Vector tiles are `2·LANES` rows × 4 columns; remainders fall back
/// to scalar code (the "inefficient boundary processing" of generic
/// libraries on small matrices).
pub fn gemm_real<R: Real + HasSimd>(
    m: usize,
    n: usize,
    k: usize,
    alpha: R,
    ap: &[R],
    bp: &[R],
    beta: R,
    c: &mut [R],
    ldc: usize,
) {
    type V<R> = simd_for<R>;
    let lanes = V::<R>::LANES;
    let mr = 2 * lanes;
    let nr = 4usize;

    let mut j0 = 0;
    while j0 < n {
        let w = nr.min(n - j0);
        let mut i0 = 0;
        // full vector tiles
        while i0 + mr <= m {
            let mut acc = [[V::<R>::zero(); 4]; 2];
            for kk in 0..k {
                // SAFETY: `i0 + mr <= m` (loop guard), so both lane loads stay inside column `kk` of the m×k matrix `ap`.
                let a0 = unsafe { V::<R>::load(ap.as_ptr().add(kk * m + i0)) };
                let a1 = unsafe { V::<R>::load(ap.as_ptr().add(kk * m + i0 + lanes)) };
                for j in 0..w {
                    let bs = V::<R>::splat(bp[(j0 + j) * k + kk]);
                    acc[0][j] = acc[0][j].fma(a0, bs);
                    acc[1][j] = acc[1][j].fma(a1, bs);
                }
            }
            let va = V::<R>::splat(alpha);
            for j in 0..w {
                let base = (j0 + j) * ldc + i0;
                for v in 0..2 {
                    // SAFETY: `base + v*lanes + LANES <= (j0+w)*ldc` because `i0 + mr <= m <= ldc`; the pointer stays inside C.
                    let ptr = unsafe { c.as_mut_ptr().add(base + v * lanes) };
                    let res = if beta == R::ZERO {
                        acc[v][j].mul(va)
                    } else {
                        // SAFETY: same bound as `ptr` above — the load reads the C tile about to be overwritten.
                        let orig = unsafe { V::<R>::load(ptr) };
                        orig.mul(V::<R>::splat(beta)).fma(acc[v][j], va)
                    };
                    // SAFETY: same bound as `ptr` above — the store writes the C tile just read.
                    unsafe { res.store(ptr) };
                }
            }
            i0 += mr;
        }
        // scalar edge rows
        for i in i0..m {
            for j in 0..w {
                let mut acc = R::ZERO;
                for kk in 0..k {
                    acc = acc.mul_add(ap[kk * m + i], bp[(j0 + j) * k + kk]);
                }
                let idx = (j0 + j) * ldc + i;
                c[idx] = if beta == R::ZERO {
                    alpha * acc
                } else {
                    beta * c[idx] + alpha * acc
                };
            }
        }
        j0 += w;
    }
}

/// Scalar complex GEMM on packed operands (2×2 register blocking) — the
/// structure a generic library's complex path degenerates to at very small
/// sizes, where its interleaved-complex SIMD kernels cannot fill a vector.
pub fn gemm_cplx<E: Element>(
    m: usize,
    n: usize,
    k: usize,
    alpha: E,
    ap: &[E],
    bp: &[E],
    beta: E,
    c: &mut [E],
    ldc: usize,
) {
    let mut j0 = 0;
    while j0 < n {
        let w = 2.min(n - j0);
        let mut i0 = 0;
        while i0 < m {
            let h = 2.min(m - i0);
            let mut acc = [[E::zero(); 2]; 2];
            for kk in 0..k {
                for i in 0..h {
                    let a = ap[kk * m + i0 + i];
                    for j in 0..w {
                        let b = bp[(j0 + j) * k + kk];
                        acc[i][j] = acc[i][j].add(a.mul(b));
                    }
                }
            }
            for i in 0..h {
                for j in 0..w {
                    let idx = (j0 + j) * ldc + i0 + i;
                    c[idx] = alpha.mul(acc[i][j]).add(beta.mul(c[idx]));
                }
            }
            i0 += h;
        }
        j0 += w;
    }
}

/// Scalar in-place triangular solve of one column-major matrix `B` against
/// a stored triangular `A` (no packing, division on the diagonal) — the
/// small-matrix path of a conventional TRSM.
///
/// Solves `op(A)·X = α·B`; `lower_after_op` says whether `op(A)` is lower
/// triangular.
#[allow(clippy::too_many_arguments)]
pub fn trsm_left<E: Element>(
    t: usize,
    n: usize,
    alpha: E,
    a: &[E],
    lda: usize,
    trans: Trans,
    conj: bool,
    uplo: Uplo,
    diag: Diag,
    b: &mut [E],
    ldb: usize,
) {
    let get_a = |i: usize, j: usize| -> E {
        let raw = match trans {
            Trans::No => a[j * lda + i],
            Trans::Yes => a[i * lda + j],
        };
        if conj {
            E::from_f64s(raw.re().to_f64(), -raw.im().to_f64())
        } else {
            raw
        }
    };
    let lower_after_op = matches!(
        (trans, uplo),
        (Trans::No, Uplo::Lower) | (Trans::Yes, Uplo::Upper)
    );
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + t];
        if alpha != E::one() {
            for x in col.iter_mut() {
                *x = alpha.mul(*x);
            }
        }
        if lower_after_op {
            for i in 0..t {
                let mut acc = col[i];
                for l in 0..i {
                    acc = acc.sub(get_a(i, l).mul(col[l]));
                }
                col[i] = if diag == Diag::Unit {
                    acc
                } else {
                    // division, not reciprocal-multiply: generic libraries
                    // divide here (the latency the paper's packing avoids)
                    acc.mul(get_a(i, i).recip())
                };
            }
        } else {
            for i in (0..t).rev() {
                let mut acc = col[i];
                for l in i + 1..t {
                    acc = acc.sub(get_a(i, l).mul(col[l]));
                }
                col[i] = if diag == Diag::Unit {
                    acc
                } else {
                    acc.mul(get_a(i, i).recip())
                };
            }
        }
    }
}

/// Right-side scalar TRSM: `X·op(A) = α·B`, solved row-wise via the
/// transposed system.
#[allow(clippy::too_many_arguments)]
pub fn trsm_right<E: Element>(
    m: usize,
    t: usize,
    alpha: E,
    a: &[E],
    lda: usize,
    trans: Trans,
    conj: bool,
    uplo: Uplo,
    diag: Diag,
    b: &mut [E],
    ldb: usize,
) {
    let get_a = |i: usize, j: usize| -> E {
        let raw = match trans {
            Trans::No => a[j * lda + i],
            Trans::Yes => a[i * lda + j],
        };
        if conj {
            E::from_f64s(raw.re().to_f64(), -raw.im().to_f64())
        } else {
            raw
        }
    };
    // X·op(A) = αB ⇔ op(A)ᵀ·Xᵀ = αBᵀ; op(A)ᵀ is lower iff op(A) is upper.
    let lower_t = !matches!(
        (trans, uplo),
        (Trans::No, Uplo::Lower) | (Trans::Yes, Uplo::Upper)
    );
    for r in 0..m {
        if alpha != E::one() {
            for j in 0..t {
                let idx = j * ldb + r;
                b[idx] = alpha.mul(b[idx]);
            }
        }
        if lower_t {
            for i in 0..t {
                let mut acc = b[i * ldb + r];
                for l in 0..i {
                    // op(A)ᵀ(i, l) = op(A)(l, i)
                    acc = acc.sub(get_a(l, i).mul(b[l * ldb + r]));
                }
                b[i * ldb + r] = if diag == Diag::Unit {
                    acc
                } else {
                    acc.mul(get_a(i, i).recip())
                };
            }
        } else {
            for i in (0..t).rev() {
                let mut acc = b[i * ldb + r];
                for l in i + 1..t {
                    acc = acc.sub(get_a(l, i).mul(b[l * ldb + r]));
                }
                b[i * ldb + r] = if diag == Diag::Unit {
                    acc
                } else {
                    acc.mul(get_a(i, i).recip())
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use iatf_layout::{GemmMode, Side, StdBatch, TrsmMode};
    use iatf_simd::c64;

    #[test]
    fn gemm_real_matches_naive() {
        for (m, n, k) in [(1, 1, 1), (4, 4, 4), (9, 7, 5), (16, 16, 16), (13, 3, 8)] {
            let a = StdBatch::<f64>::random(m, k, 1, 3);
            let b = StdBatch::<f64>::random(k, n, 1, 4);
            let c0 = StdBatch::<f64>::random(m, n, 1, 5);
            let mut want = c0.clone();
            naive::gemm_ref(GemmMode::NN, false, false, 1.5, &a, &b, 0.5, &mut want);
            let mut got = c0.clone();
            gemm_real(
                m,
                n,
                k,
                1.5,
                a.mat(0),
                b.mat(0),
                0.5,
                got.mat_mut(0),
                m,
            );
            assert!(want.max_abs_diff(&got) < 1e-12, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn gemm_real_f32_vector_tiles() {
        let (m, n, k) = (17usize, 9usize, 6usize);
        let a = StdBatch::<f32>::random(m, k, 1, 13);
        let b = StdBatch::<f32>::random(k, n, 1, 14);
        let mut want = StdBatch::<f32>::zeroed(m, n, 1);
        naive::gemm_ref(GemmMode::NN, false, false, 1.0, &a, &b, 0.0, &mut want);
        let mut got = StdBatch::<f32>::zeroed(m, n, 1);
        gemm_real(m, n, k, 1.0, a.mat(0), b.mat(0), 0.0, got.mat_mut(0), m);
        assert!(want.max_abs_diff(&got) < 1e-4);
    }

    #[test]
    fn gemm_cplx_matches_naive() {
        let (m, n, k) = (5usize, 4usize, 3usize);
        let a = StdBatch::<c64>::random(m, k, 1, 23);
        let b = StdBatch::<c64>::random(k, n, 1, 24);
        let c0 = StdBatch::<c64>::random(m, n, 1, 25);
        let alpha = c64::new(1.0, -0.5);
        let beta = c64::new(0.25, 0.75);
        let mut want = c0.clone();
        naive::gemm_ref(GemmMode::NN, false, false, alpha, &a, &b, beta, &mut want);
        let mut got = c0.clone();
        gemm_cplx(m, n, k, alpha, a.mat(0), b.mat(0), beta, got.mat_mut(0), m);
        assert!(want.max_abs_diff(&got) < 1e-12);
    }

    #[test]
    fn pack_op_transposes_and_conjugates() {
        let a = StdBatch::<c64>::random(3, 4, 1, 31);
        let mut dst = vec![c64::zero(); 12];
        pack_op(&mut dst, a.mat(0), 3, 4, 3, Trans::Yes, true);
        for i in 0..4 {
            for j in 0..3 {
                let want = a.get(0, j, i).conj();
                assert_eq!(dst[j * 4 + i], want);
            }
        }
    }

    #[test]
    fn trsm_left_and_right_match_naive() {
        for mode in TrsmMode::all() {
            let (m, n) = (5usize, 4usize);
            let t = if mode.side == Side::Left { m } else { n };
            let a = StdBatch::<f64>::random_triangular(t, 1, mode.uplo, mode.diag, 41);
            let b0 = StdBatch::<f64>::random(m, n, 1, 42);
            let mut want = b0.clone();
            naive::trsm_ref(mode, false, 2.0, &a, &mut want);
            let mut got = b0.clone();
            match mode.side {
                Side::Left => trsm_left(
                    t,
                    n,
                    2.0,
                    a.mat(0),
                    t,
                    mode.trans,
                    false,
                    mode.uplo,
                    mode.diag,
                    got.mat_mut(0),
                    m,
                ),
                Side::Right => trsm_right(
                    m,
                    t,
                    2.0,
                    a.mat(0),
                    t,
                    mode.trans,
                    false,
                    mode.uplo,
                    mode.diag,
                    got.mat_mut(0),
                    m,
                ),
            }
            assert!(want.max_abs_diff(&got) < 1e-10, "{mode}");
        }
    }
}
