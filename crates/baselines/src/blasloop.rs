//! "Loop around library calls" baseline — the paper's OpenBLAS comparison.
//!
//! Each matrix goes through a full library-call cycle: argument validation,
//! scratch-buffer allocation, operand packing (transpose normalization),
//! then a Goto-style single-matrix kernel. For large matrices this
//! structure is near-optimal; for a 4×4 matrix the overhead dwarfs the
//! arithmetic — which is exactly the effect the paper measures with looping
//! OpenBLAS calls over 16384 small matrices.

use crate::single;
use iatf_layout::{GemmMode, Side, StdBatch, Trans, TrsmMode};
use iatf_simd::Element;

/// Element types the baseline GEMM drivers accept.
pub trait BaselineElement: Element {
    /// Single-matrix GEMM on packed column-major operands.
    #[allow(clippy::too_many_arguments)]
    fn smat_gemm(
        m: usize,
        n: usize,
        k: usize,
        alpha: Self,
        ap: &[Self],
        bp: &[Self],
        beta: Self,
        c: &mut [Self],
        ldc: usize,
    );
}

macro_rules! impl_baseline_real {
    ($t:ty) => {
        impl BaselineElement for $t {
            fn smat_gemm(
                m: usize,
                n: usize,
                k: usize,
                alpha: Self,
                ap: &[Self],
                bp: &[Self],
                beta: Self,
                c: &mut [Self],
                ldc: usize,
            ) {
                single::gemm_real(m, n, k, alpha, ap, bp, beta, c, ldc);
            }
        }
    };
}

impl_baseline_real!(f32);
impl_baseline_real!(f64);

macro_rules! impl_baseline_cplx {
    ($t:ty) => {
        impl BaselineElement for $t {
            fn smat_gemm(
                m: usize,
                n: usize,
                k: usize,
                alpha: Self,
                ap: &[Self],
                bp: &[Self],
                beta: Self,
                c: &mut [Self],
                ldc: usize,
            ) {
                single::gemm_cplx(m, n, k, alpha, ap, bp, beta, c, ldc);
            }
        }
    };
}

impl_baseline_cplx!(iatf_simd::c32);
impl_baseline_cplx!(iatf_simd::c64);

/// Batched GEMM by looping a per-matrix library call.
pub fn gemm<E: BaselineElement>(
    mode: GemmMode,
    alpha: E,
    a: &StdBatch<E>,
    b: &StdBatch<E>,
    beta: E,
    c: &mut StdBatch<E>,
) {
    let (m, n) = c.shape();
    let k = match mode.transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    for v in 0..c.count() {
        gemm_single_call(mode, m, n, k, alpha, a, b, beta, c, v);
    }
}

/// One full "library call": validation, fresh scratch buffers, packing,
/// compute. Kept `#[inline(never)]` so the call boundary is real.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn gemm_single_call<E: BaselineElement>(
    mode: GemmMode,
    m: usize,
    n: usize,
    k: usize,
    alpha: E,
    a: &StdBatch<E>,
    b: &StdBatch<E>,
    beta: E,
    c: &mut StdBatch<E>,
    v: usize,
) {
    // argument validation a library interface performs per call
    assert!(m > 0 && n > 0 && k > 0);
    let (ar, _) = a.shape();
    let (br, _) = b.shape();
    // per-call scratch allocation (generic libraries amortize via TLS pools,
    // but still run the full packing pass per call)
    let mut ap = vec![E::zero(); m * k];
    let mut bp = vec![E::zero(); k * n];
    single::pack_op(&mut ap, a.mat(v), ar, m, k, mode.transa, false);
    single::pack_op(&mut bp, b.mat(v), br, k, n, mode.transb, false);
    let ldc = m;
    E::smat_gemm(m, n, k, alpha, &ap, &bp, beta, c.mat_mut(v), ldc);
}

/// Batched TRSM by looping a per-matrix library call. Per call the triangle
/// is normalized into a packed dense copy (the general library's packing
/// pass) before the column/row solves run.
pub fn trsm<E: Element>(
    mode: TrsmMode,
    alpha: E,
    a: &StdBatch<E>,
    b: &mut StdBatch<E>,
) {
    let (m, n) = b.shape();
    let t = a.rows();
    for v in 0..b.count() {
        trsm_single_call(mode, m, n, t, alpha, a, b, v);
    }
}

#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn trsm_single_call<E: Element>(
    mode: TrsmMode,
    m: usize,
    n: usize,
    t: usize,
    alpha: E,
    a: &StdBatch<E>,
    b: &mut StdBatch<E>,
    v: usize,
) {
    assert!(m > 0 && n > 0);
    // packing pass: dense normalized copy of the referenced triangle
    let mut tp = vec![E::zero(); t * t];
    single::pack_op(&mut tp, a.mat(v), t, t, t, mode.trans, false);
    match mode.side {
        Side::Left => single::trsm_left(
            t,
            n,
            alpha,
            &tp,
            t,
            Trans::No,
            false,
            mode.effective_uplo(),
            mode.diag,
            b.mat_mut(v),
            m,
        ),
        Side::Right => single::trsm_right(
            m,
            t,
            alpha,
            &tp,
            t,
            Trans::No,
            false,
            mode.effective_uplo(),
            mode.diag,
            b.mat_mut(v),
            m,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use iatf_simd::{c32, c64};

    #[test]
    fn gemm_matches_naive_all_modes_all_types() {
        fn check<E: BaselineElement>(tol: f64) {
            for mode in GemmMode::ALL {
                let dims = (5usize, 4usize, 3usize);
                let (ar, ac) = match mode.transa {
                    Trans::No => (dims.0, dims.2),
                    Trans::Yes => (dims.2, dims.0),
                };
                let (br, bc) = match mode.transb {
                    Trans::No => (dims.2, dims.1),
                    Trans::Yes => (dims.1, dims.2),
                };
                let a = StdBatch::<E>::random(ar, ac, 3, 1);
                let b = StdBatch::<E>::random(br, bc, 3, 2);
                let c0 = StdBatch::<E>::random(dims.0, dims.1, 3, 3);
                let alpha = E::from_f64s(1.25, -0.5);
                let beta = E::from_f64s(0.5, 0.25);
                let mut want = c0.clone();
                naive::gemm_ref(mode, false, false, alpha, &a, &b, beta, &mut want);
                let mut got = c0.clone();
                gemm(mode, alpha, &a, &b, beta, &mut got);
                assert!(
                    want.max_abs_diff(&got) < tol,
                    "{mode} {:?}",
                    E::DTYPE
                );
            }
        }
        check::<f32>(1e-4);
        check::<f64>(1e-12);
        check::<c32>(1e-4);
        check::<c64>(1e-12);
    }

    #[test]
    fn trsm_matches_naive_all_modes() {
        for mode in TrsmMode::all() {
            let (m, n) = (6usize, 5usize);
            let t = if mode.side == Side::Left { m } else { n };
            let a = StdBatch::<f64>::random_triangular(t, 2, mode.uplo, mode.diag, 7);
            let b0 = StdBatch::<f64>::random(m, n, 2, 8);
            let mut want = b0.clone();
            naive::trsm_ref(mode, false, 1.5, &a, &mut want);
            let mut got = b0.clone();
            trsm(mode, 1.5, &a, &mut got);
            assert!(want.max_abs_diff(&got) < 1e-10, "{mode}");
        }
    }
}
