//! The audited registries: which paths may hold `unsafe`, which modules
//! may touch atomics (and in what role), and the sanctioned homes of the
//! single-implementation utilities the hygiene rules protect.
//!
//! Every entry is a conscious decision with a documented reason. Adding
//! one is cheap but deliberate: the audit will name this file in its fix
//! hint, and DESIGN.md §13 mirrors the policy in prose.

/// How a registered concurrency module uses atomics, which decides how
/// strict the `ATOMIC_RELAXED` rule is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleClass {
    /// Monotonic counters / advisory flags only: no ordering edge is ever
    /// required, so `Relaxed` is the expected default.
    Counter,
    /// A synchronization protocol (seqlock, epoch scheme, publish chain):
    /// `Relaxed` is permitted but its justification must acknowledge the
    /// relaxation explicitly.
    Protocol,
}

/// The audit's registries, path-keyed by workspace-relative prefixes.
pub struct Registry {
    /// Prefixes where `unsafe` is sanctioned (ported from the former
    /// `scripts/verify.sh` grep gate; DESIGN.md "Unsafe policy").
    pub unsafe_paths: &'static [&'static str],
    /// Files allowed to use atomic `Ordering`, with their class.
    pub concurrency_modules: &'static [(&'static str, ModuleClass)],
    /// Files allowed to hand-roll string-escaping tables.
    pub escape_exempt: &'static [(&'static str, &'static str)],
    /// Files allowed to read `IATF_*` environment variables directly.
    pub env_exempt: &'static [&'static str],
    /// Crate src prefixes whose feature-gated `pub fn`s must have
    /// `#[cfg(not(feature))]` fallbacks (the always-compiled facades).
    pub fallback_crates: &'static [&'static str],
}

impl Registry {
    /// The workspace policy.
    pub fn workspace() -> &'static Registry {
        &WORKSPACE
    }
}

static WORKSPACE: Registry = Registry {
    unsafe_paths: &[
        // SIMD backends: the sanctioned home of intrinsics (iatf-simd
        // exemption in DESIGN.md). Covers the per-width backend modules —
        // backend/x86.rs (SSE2), backend/avx.rs (AVX2+FMA), backend/
        // avx512.rs (AVX-512F), backend/neon.rs — whose every intrinsic
        // call carries a SAFETY comment naming the target feature the
        // runtime probe guarantees.
        "crates/simd/src/",
        // Raw-pointer microkernels and their property tests; includes
        // wide.rs, the #[target_feature] wrapper modules that re-bind the
        // kernel bodies at 256/512-bit widths.
        "crates/kernels/src/",
        "crates/kernels/tests/proptests.rs",
        // Packing fast paths over raw slices.
        "crates/layout/src/compact.rs",
        // Vendored-reference baselines used for benchmarking only.
        "crates/baselines/src/",
        // Element-type punning confined to one audited module.
        "crates/core/src/elem.rs",
        // perf_event_open syscall surface.
        "crates/trace/src/pmu/sys.rs",
        // Plan executors calling the unsafe kernel entry points.
        "crates/core/src/plan/gemm.rs",
        "crates/core/src/plan/trsm.rs",
        "crates/core/src/plan/trmm.rs",
        // Codegen equivalence harness drives raw kernel pointers.
        "crates/codegen/tests/equivalence.rs",
        // Bench runners call kernels directly to time them.
        "crates/bench/src/runners.rs",
        "crates/bench/benches/",
    ],
    concurrency_modules: &[
        // Protocol modules: each is covered by a loom model (see the
        // `loom_models` module in the file) run by scripts/verify.sh.
        ("crates/core/src/plan/cache.rs", ModuleClass::Protocol),
        ("crates/watch/src/stats.rs", ModuleClass::Protocol),
        ("crates/trace/src/ring.rs", ModuleClass::Protocol),
        // Counter modules: monotonic telemetry and id allocators.
        ("crates/obs/src/metrics.rs", ModuleClass::Counter),
        ("crates/trace/src/recorder.rs", ModuleClass::Counter),
        ("crates/watch/src/drift.rs", ModuleClass::Counter),
        ("crates/tune/src/db.rs", ModuleClass::Counter),
        ("crates/tune/src/envelope.rs", ModuleClass::Counter),
        ("crates/journal/src/ledger.rs", ModuleClass::Counter),
    ],
    escape_exempt: &[
        ("crates/obs/src/json.rs", "the single JSON implementation itself"),
        (
            "crates/watch/src/prom.rs",
            "Prometheus exposition-format label escaping (spec-mandated, not JSON)",
        ),
    ],
    env_exempt: &[
        "crates/obs/src/env.rs",
        // IATF_FORCE_WIDTH is read before any higher layer exists:
        // iatf-simd sits below iatf-obs in the crate DAG, so it cannot
        // use the env helpers without inverting the layering. The read
        // follows the same hygiene contract (unset silent, invalid warns
        // once and falls back) and is tested by the force_width_*
        // integration tests.
        "crates/simd/src/width.rs",
    ],
    fallback_crates: &[
        "crates/obs/src/",
        "crates/trace/src/",
        "crates/watch/src/",
        "crates/journal/src/",
    ],
};

/// What kind of source a file is, by path convention; rules use this to
/// scope themselves (e.g. `LIB_PANIC` only fires in `Lib` files).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/`.
    Lib,
    /// Integration tests, benches, examples.
    Test,
    /// Binary targets (`src/bin/`, `src/main.rs`).
    Bin,
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    if rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/") {
        FileKind::Test
    } else if rel.contains("/src/bin/") || rel.ends_with("/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Prefix match against a registry path list.
pub fn matches_prefix(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}
