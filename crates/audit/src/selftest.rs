//! Audit self-test: proves the gate has teeth.
//!
//! Seeds one violation of every rule class into a scratch source tree,
//! runs the real collector + engine over it, and checks that each seeded
//! file produces exactly the expected rule ids — plus a fully clean file
//! that must produce none. `scripts/verify.sh` runs this before trusting
//! a clean workspace audit: a pass that cannot fail certifies nothing.

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::RuleId;
use crate::{audit_sources, Registry};

/// One seeded scenario: a file, its contents, and the rules it must trip.
struct Seed {
    rel: &'static str,
    content: &'static str,
    expect: &'static [RuleId],
}

fn seeds() -> Vec<Seed> {
    vec![
        Seed {
            // Outside the allowlist and unjustified: both unsafe rules.
            rel: "crates/badcrate/src/unsafe_bad.rs",
            content: "pub fn f() {\n    unsafe { core::ptr::read_volatile(core::ptr::null::<u8>()); }\n}\n",
            expect: &[RuleId::UnsafePath, RuleId::UnsafeJustify],
        },
        Seed {
            // Allowlisted path, but no SAFETY comment.
            rel: "crates/simd/src/unsafe_unjustified.rs",
            content: "pub fn f() {\n    unsafe { core::ptr::read_volatile(core::ptr::null::<u8>()); }\n}\n",
            expect: &[RuleId::UnsafeJustify],
        },
        Seed {
            // A width backend grown outside the sanctioned homes: wide
            // #[target_feature] intrinsics belong in crates/simd/src/ or
            // crates/kernels/src/ (and need SAFETY justifications even
            // there). Both unsafe rules must fire.
            rel: "crates/badcrate/src/avx_backend.rs",
            content: "#[cfg(target_arch = \"x86_64\")]\npub fn first_lane(p: *const f32) -> f32 {\n    use core::arch::x86_64::*;\n    unsafe { _mm_cvtss_f32(_mm256_castps256_ps128(_mm256_loadu_ps(p))) }\n}\n",
            expect: &[RuleId::UnsafePath, RuleId::UnsafeJustify],
        },
        Seed {
            // Atomics outside any registered concurrency module.
            rel: "crates/badcrate/src/atomics_stray.rs",
            content: "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(x: &AtomicU64) -> u64 {\n    // ordering: counter read\n    x.load(Ordering::Relaxed)\n}\n",
            expect: &[RuleId::AtomicModule],
        },
        Seed {
            // Registered counter module, but the site is unjustified.
            rel: "crates/tune/src/db.rs",
            content: "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(x: &AtomicU64) {\n    x.fetch_add(1, Ordering::Relaxed);\n}\n",
            expect: &[RuleId::AtomicJustify],
        },
        Seed {
            // Registered protocol module; justification ignores Relaxed.
            rel: "crates/trace/src/ring.rs",
            content: "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(x: &AtomicU64) -> u64 {\n    // ordering: cheap and fine\n    x.load(Ordering::Relaxed)\n}\n",
            expect: &[RuleId::AtomicRelaxed],
        },
        Seed {
            // Feature-gated pub fn with no not(feature) twin.
            rel: "crates/watch/src/gated.rs",
            content: "#[cfg(feature = \"enabled\")]\npub fn lonely() {}\n",
            expect: &[RuleId::FeatureFallback],
        },
        Seed {
            // Hand-rolled quote-escaping table.
            rel: "crates/badcrate/src/escaper.rs",
            content: "pub fn esc(c: char, out: &mut String) {\n    match c {\n        '\"' => out.push_str(\"\\\\\\\"\"),\n        c => out.push(c),\n    }\n}\n",
            expect: &[RuleId::JsonEscape],
        },
        Seed {
            // Direct IATF_* environment read.
            rel: "crates/badcrate/src/knobs.rs",
            content: "pub fn db_path() -> Option<String> {\n    std::env::var(\"IATF_SEEDED_KNOB\").ok()\n}\n",
            expect: &[RuleId::EnvRead],
        },
        Seed {
            // Library code that aborts the process.
            rel: "crates/badcrate/src/aborts.rs",
            content: "pub fn f(x: u32) {\n    if x == 0 {\n        panic!(\"zero\");\n    }\n    std::process::exit(1);\n}\n",
            expect: &[RuleId::LibPanic, RuleId::LibPanic],
        },
        Seed {
            // Fully clean: justified unsafe in an allowlisted path, an
            // atomic type without ordering choices, panics confined to a
            // test module.
            rel: "crates/simd/src/clean.rs",
            content: "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads (seeded probe).\n    unsafe { core::ptr::read_volatile(p) }\n}\npub fn g(x: &AtomicU64) -> u64 {\n    let _ = x;\n    0\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        if false {\n            panic!(\"test-only panic is fine\");\n        }\n    }\n}\n",
            expect: &[],
        },
    ]
}

/// Runs the negative self-test in-memory plus through a scratch
/// directory on disk (exercising the collector), returning one summary
/// line per scenario, or a description of the first discrepancy.
pub fn self_test() -> Result<Vec<String>, String> {
    let seeds = seeds();

    // In-memory pass: every scenario audited together, findings grouped
    // back per file.
    let sources: Vec<(String, String)> = seeds
        .iter()
        .map(|s| (s.rel.to_string(), s.content.to_string()))
        .collect();
    let findings = audit_sources(&sources, Registry::workspace());

    let mut lines = Vec::new();
    for seed in &seeds {
        let got: Vec<RuleId> = findings
            .iter()
            .filter(|d| d.file == seed.rel)
            .map(|d| d.rule)
            .collect();
        let want: Vec<RuleId> = seed.expect.to_vec();
        let got_set: BTreeSet<&str> = got.iter().map(|r| r.id()).collect();
        let want_set: BTreeSet<&str> = want.iter().map(|r| r.id()).collect();
        if got.len() != want.len() || got_set != want_set {
            return Err(format!(
                "self-test: seeded {} expected {:?}, audit reported {:?}",
                seed.rel,
                want.iter().map(|r| r.id()).collect::<Vec<_>>(),
                got.iter().map(|r| r.id()).collect::<Vec<_>>(),
            ));
        }
        lines.push(if want.is_empty() {
            format!("{}: clean file audits clean", seed.rel)
        } else {
            format!(
                "{}: fires {}",
                seed.rel,
                want.iter().map(|r| r.id()).collect::<Vec<_>>().join(", ")
            )
        });
    }

    // Disk pass: one representative violation written to a real scratch
    // tree and found by the same collector `reproduce audit` uses.
    let scratch = std::env::temp_dir().join(format!("iatf-audit-selftest-{}", std::process::id()));
    let result = disk_probe(&scratch, &seeds[0]);
    let _ = std::fs::remove_dir_all(&scratch);
    let found = result.map_err(|e| format!("self-test scratch tree: {e}"))?;
    if !found {
        return Err(format!(
            "self-test: collector missed the seeded violation in {}",
            seeds[0].rel
        ));
    }
    lines.push("scratch-tree collector pass: seeded violation detected".to_string());
    Ok(lines)
}

fn disk_probe(scratch: &Path, seed: &Seed) -> std::io::Result<bool> {
    let file = scratch.join(seed.rel);
    std::fs::create_dir_all(file.parent().expect("seed path has a parent"))?;
    std::fs::write(&file, seed.content)?;
    let findings = crate::audit_workspace(scratch)?;
    Ok(seed
        .expect
        .iter()
        .all(|want| findings.iter().any(|d| d.file == seed.rel && d.rule == *want)))
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        let lines = super::self_test().expect("self-test must pass");
        assert!(lines.len() >= 10, "unexpectedly few scenarios: {lines:?}");
    }
}
