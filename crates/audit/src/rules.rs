//! The audit rules.
//!
//! Each rule walks the lexed line streams of one file (plus, for the
//! fallback rule, crate-wide state) and emits [`Diagnostic`]s. Rules see
//! only code text with strings blanked — a rule keyword inside a string
//! or comment can never fire one — and skip `#[cfg(test)]` module spans
//! where the certified invariant is about production code.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::Lexed;
use crate::registry::{classify, matches_prefix, FileKind, ModuleClass, Registry};

/// One file ready for auditing.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Path-derived role.
    pub kind: FileKind,
    /// Lexed line streams.
    pub lexed: Lexed,
}

impl SourceFile {
    /// Lexes `content` under the workspace-relative path `rel`.
    pub fn new(rel: &str, content: &str) -> Self {
        SourceFile {
            rel: rel.to_string(),
            kind: classify(rel),
            lexed: crate::lexer::lex(content),
        }
    }
}

/// Runs every rule over `files` and returns findings sorted by
/// (file, line, rule).
pub fn run(files: &[SourceFile], reg: &Registry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        unsafe_rules(f, reg, &mut out);
        atomic_rules(f, reg, &mut out);
        json_escape_rule(f, reg, &mut out);
        env_read_rule(f, reg, &mut out);
        lib_panic_rule(f, &mut out);
    }
    fallback_rule(files, reg, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    out
}

/// True when `word` occurs in `code` delimited by non-identifier chars.
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident(bytes[start - 1]);
        let post_ok = end == bytes.len() || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// The comment text "adjacent" to a site: the site line's own trailing
/// comment plus the contiguous block of pure-comment (and attribute)
/// lines directly above it. A blank line or a line of real code ends
/// the block. Lowercased for case-insensitive matching.
fn adjacent_comment(lexed: &Lexed, site: usize) -> String {
    let mut text = lexed.lines[site].comment.clone();
    let mut l = site;
    while l > 0 {
        l -= 1;
        let line = &lexed.lines[l];
        let code = line.code.trim();
        if code.is_empty() && line.comment.is_empty() {
            break;
        }
        if !code.is_empty() && !code.starts_with("#[") {
            break;
        }
        text.push(' ');
        text.push_str(&line.comment);
    }
    text.to_ascii_lowercase()
}

/// Whether a site is covered by a justification carrying `needle`
/// (lowercase): either its adjacent comment block, or any comment within
/// `window` lines above — the latter tolerates a statement head (an
/// `if`, a struct literal) between a block comment and the sites it
/// covers. Returns the covering text for follow-on checks.
fn covering_comment(lexed: &Lexed, site: usize, needle: &str, window: usize) -> Option<String> {
    let adjacent = adjacent_comment(lexed, site);
    if adjacent.contains(needle) {
        return Some(adjacent);
    }
    for l in (site.saturating_sub(window)..site).rev() {
        if lexed.lines[l].comment.is_empty() {
            continue;
        }
        // Expand to the full comment block: the needle may sit on an
        // earlier line of a block whose tail is inside the window.
        let block = adjacent_comment(lexed, l);
        if block.contains(needle) {
            return Some(block);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// unsafe rules
// ---------------------------------------------------------------------------

/// Lines above a site searched for a SAFETY comment when the adjacent
/// block has none (tolerates a statement head in between).
const SAFETY_WINDOW: usize = 6;
/// Max gap for chaining a site to the previous justified one: one SAFETY
/// comment covers a tight run of sites (e.g. consecutive vector stores).
const SAFETY_CHAIN: usize = 5;

fn unsafe_rules(f: &SourceFile, reg: &Registry, out: &mut Vec<Diagnostic>) {
    let allowlisted = matches_prefix(&f.rel, reg.unsafe_paths);
    let mut last_justified: Option<usize> = None;
    for (i, line) in f.lexed.lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if !allowlisted {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                rule: RuleId::UnsafePath,
                message: "`unsafe` outside the audited path allowlist".to_string(),
            });
        }
        let direct = covering_comment(&f.lexed, i, "safety", SAFETY_WINDOW).is_some();
        let chained = last_justified.is_some_and(|p| i - p <= SAFETY_CHAIN);
        if direct || chained {
            last_justified = Some(i);
        } else {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                rule: RuleId::UnsafeJustify,
                message: "`unsafe` without an adjacent SAFETY justification comment".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// atomic rules
// ---------------------------------------------------------------------------

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
/// Lines above a site searched for an ordering comment when the adjacent
/// block has none.
const ORDERING_WINDOW: usize = 4;
/// Max gap for chaining a site to the previous justified one: one
/// ordering comment covers the tight statement group below it.
const ORDERING_CHAIN: usize = 5;

/// An atomic-ordering use site: (line index, uses Relaxed).
fn atomic_sites(f: &SourceFile) -> Vec<(usize, bool)> {
    let mut sites = Vec::new();
    let mut in_use = false;
    for (i, line) in f.lexed.lines.iter().enumerate() {
        if f.lexed.in_test[i] {
            continue;
        }
        let trimmed = line.code.trim();
        // Imports re-export ordering names without *choosing* one; `use`
        // statements may span lines, so track them to the semicolon.
        let use_line = in_use
            || trimmed.starts_with("use ")
            || trimmed.starts_with("pub use ")
            || trimmed.starts_with("pub(crate) use ");
        if use_line {
            in_use = !trimmed.ends_with(';');
            continue;
        }
        let hit = ORDERINGS.iter().any(|o| has_word(&line.code, o));
        if hit {
            sites.push((i, has_word(&line.code, "Relaxed")));
        }
    }
    sites
}

fn atomic_rules(f: &SourceFile, reg: &Registry, out: &mut Vec<Diagnostic>) {
    if f.kind != FileKind::Lib {
        return;
    }
    let sites = atomic_sites(f);
    if sites.is_empty() {
        return;
    }
    let class = reg
        .concurrency_modules
        .iter()
        .find(|(p, _)| f.rel == *p)
        .map(|(_, c)| *c);
    let Some(class) = class else {
        out.push(Diagnostic {
            file: f.rel.clone(),
            line: sites[0].0 + 1,
            rule: RuleId::AtomicModule,
            message: format!(
                "atomic Ordering used in a module not registered for concurrency ({} site{})",
                sites.len(),
                if sites.len() == 1 { "" } else { "s" }
            ),
        });
        return;
    };
    // (line, justification text) of the last justified site, for chaining.
    let mut last: Option<(usize, String)> = None;
    for (i, relaxed) in sites {
        let text = match covering_comment(&f.lexed, i, "ordering:", ORDERING_WINDOW) {
            Some(text) => Some(text),
            None => match &last {
                Some((p, t)) if i - p <= ORDERING_CHAIN => Some(t.clone()),
                _ => None,
            },
        };
        let Some(text) = text else {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                rule: RuleId::AtomicJustify,
                message: "atomic ordering chosen without an adjacent `// ordering:` justification"
                    .to_string(),
            });
            continue;
        };
        if relaxed && class == ModuleClass::Protocol && !text.contains("relaxed") {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                rule: RuleId::AtomicRelaxed,
                message:
                    "Relaxed in a protocol-class module; its justification must name the relaxation"
                        .to_string(),
            });
        }
        last = Some((i, text));
    }
}

// ---------------------------------------------------------------------------
// hygiene rules
// ---------------------------------------------------------------------------

fn json_escape_rule(f: &SourceFile, reg: &Registry, out: &mut Vec<Diagnostic>) {
    if f.kind != FileKind::Lib || reg.escape_exempt.iter().any(|(p, _)| f.rel == *p) {
        return;
    }
    for (i, line) in f.lexed.lines.iter().enumerate() {
        if f.lexed.in_test[i] {
            continue;
        }
        // A match arm on the double-quote character is the signature of a
        // hand-rolled escaping table.
        let code = &line.code;
        let arm = code.contains("'\"'") && code.contains("=>");
        if arm {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                rule: RuleId::JsonEscape,
                message: "hand-rolled string-escaping table outside iatf_obs::json".to_string(),
            });
        }
    }
}

fn env_read_rule(f: &SourceFile, reg: &Registry, out: &mut Vec<Diagnostic>) {
    if f.kind != FileKind::Lib || reg.env_exempt.iter().any(|p| f.rel == *p) {
        return;
    }
    for (i, line) in f.lexed.lines.iter().enumerate() {
        if f.lexed.in_test[i] {
            continue;
        }
        if line.code.contains("env::var") && line.raw.contains("IATF_") {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                rule: RuleId::EnvRead,
                message: "IATF_* environment variable read outside iatf_obs::env".to_string(),
            });
        }
    }
}

fn lib_panic_rule(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.kind != FileKind::Lib {
        return;
    }
    for (i, line) in f.lexed.lines.iter().enumerate() {
        if f.lexed.in_test[i] {
            continue;
        }
        let code = &line.code;
        let what = if code.contains("panic!(") {
            "`panic!`"
        } else if code.contains("process::exit") {
            "`process::exit`"
        } else {
            continue;
        };
        out.push(Diagnostic {
            file: f.rel.clone(),
            line: i + 1,
            rule: RuleId::LibPanic,
            message: format!("{what} in library code"),
        });
    }
}

// ---------------------------------------------------------------------------
// feature-fallback rule
// ---------------------------------------------------------------------------

/// A feature-gated public function: (crate prefix, feature, fn name).
#[derive(PartialEq, Eq, Hash, Clone)]
struct GatedFn {
    krate: &'static str,
    feature: String,
    name: String,
}

fn fallback_rule(files: &[SourceFile], reg: &Registry, out: &mut Vec<Diagnostic>) {
    use std::collections::HashSet;
    // (gated fn, positive polarity) -> first site for reporting.
    let mut positive: Vec<(GatedFn, &SourceFile, usize)> = Vec::new();
    let mut negative: HashSet<GatedFn> = HashSet::new();

    for f in files {
        let Some(krate) = reg.fallback_crates.iter().find(|p| f.rel.starts_with(**p)) else {
            continue;
        };
        if f.kind != FileKind::Lib {
            continue;
        }
        for (i, line) in f.lexed.lines.iter().enumerate() {
            if f.lexed.in_test[i] {
                continue;
            }
            // In blanked code text the feature string is `""`; the actual
            // name is recovered from the raw line.
            let trimmed = line.code.trim();
            let negated = if trimmed.starts_with("#[cfg(feature = \"\")]") {
                false
            } else if trimmed.starts_with("#[cfg(not(feature = \"\")))]")
                || trimmed.starts_with("#[cfg(not(feature = \"\"))]")
            {
                true
            } else {
                continue;
            };
            let Some(feature) = raw_feature_name(&line.raw) else {
                continue;
            };
            // Look past further attributes / doc lines for a `pub fn`.
            let Some((j, name)) = gated_pub_fn(f, i) else {
                continue;
            };
            let key = GatedFn {
                krate,
                feature,
                name,
            };
            if negated {
                negative.insert(key);
            } else {
                positive.push((key, f, j));
            }
        }
    }
    for (key, f, line) in positive {
        if !negative.contains(&key) {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: line + 1,
                rule: RuleId::FeatureFallback,
                message: format!(
                    "pub fn `{}` gated on feature \"{}\" has no #[cfg(not(feature))] fallback in this crate",
                    key.name, key.feature
                ),
            });
        }
    }
}

/// Extracts the feature name from the raw text of a cfg attribute line.
fn raw_feature_name(raw: &str) -> Option<String> {
    let at = raw.find("feature = \"")? + "feature = \"".len();
    let rest = &raw[at..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Finds a `pub fn` within a few non-attribute lines after `i`, returning
/// (line index, fn name).
fn gated_pub_fn(f: &SourceFile, i: usize) -> Option<(usize, String)> {
    for j in (i + 1)..f.lexed.lines.len().min(i + 4) {
        let code = f.lexed.lines[j].code.trim();
        if code.starts_with("#[") || code.is_empty() {
            continue;
        }
        let rest = code.strip_prefix("pub fn ")?;
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        return (!name.is_empty()).then_some((j, name));
    }
    None
}
