//! Workspace source certifier.
//!
//! `iatf-audit` statically certifies the workspace's source-level safety
//! and hygiene invariants the same way `iatf-verify` certifies kernel
//! numerics: a pass over every `.rs` file that either comes back clean
//! or emits pinpointed `file:line` diagnostics with a rule id and a fix
//! hint. It is wired in as `reproduce audit` and gated by
//! `scripts/verify.sh`; DESIGN.md §13 documents each rule's invariant.
//!
//! The rules:
//! - `UNSAFE_PATH` / `UNSAFE_JUSTIFY` — unsafe code is confined to the
//!   audited allowlist and every site carries a `SAFETY:` comment.
//! - `ATOMIC_MODULE` / `ATOMIC_JUSTIFY` / `ATOMIC_RELAXED` — atomics are
//!   confined to registered concurrency modules, every ordering choice
//!   is justified in place, and `Relaxed` inside a synchronization
//!   protocol must acknowledge the relaxation.
//! - `FEATURE_FALLBACK` / `JSON_ESCAPE` / `ENV_READ` / `LIB_PANIC` —
//!   cross-crate hygiene: gated public API has no-op fallbacks, JSON
//!   escaping and `IATF_*` parsing have single homes, libraries do not
//!   abort the process.
//!
//! The audit must also pass over itself: this crate uses no `unsafe`,
//! no atomics, and never panics on malformed input.

#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod registry;
pub mod rules;

mod selftest;

pub use diag::{Diagnostic, RuleId};
pub use registry::{ModuleClass, Registry};
pub use rules::SourceFile;
pub use selftest::self_test;

use std::path::Path;

/// Collects the workspace-relative paths and contents of every tracked
/// `.rs` source under `root` (the `src/` and `crates/` trees; `vendor/`
/// and `target/` are out of audit scope).
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let content = std::fs::read_to_string(&path)?;
            out.push((rel, content));
        }
    }
    Ok(())
}

/// Audits in-memory sources (workspace-relative path, content) against a
/// registry. This is the engine entry the self-test drives with seeded
/// violations.
pub fn audit_sources(sources: &[(String, String)], reg: &Registry) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, content)| SourceFile::new(rel, content))
        .collect();
    rules::run(&files, reg)
}

/// Audits the workspace rooted at `root` against the workspace registry.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let sources = collect_sources(root)?;
    Ok(audit_sources(&sources, Registry::workspace()))
}

/// Renders findings as the JSON report for `reproduce audit --json`.
pub fn report_json(findings: &[Diagnostic]) -> iatf_obs::json::Json {
    use iatf_obs::json::Json;
    Json::object()
        .set("clean", findings.is_empty())
        .set("findings", findings.len())
        .set(
            "diagnostics",
            Json::Array(findings.iter().map(Diagnostic::to_json).collect()),
        )
        .set(
            "rules",
            Json::Array(
                RuleId::ALL
                    .iter()
                    .map(|r| {
                        Json::object()
                            .set("id", r.id())
                            .set("invariant", r.invariant())
                    })
                    .collect(),
            ),
        )
}
