//! Structured audit diagnostics.
//!
//! Mirrors the `iatf-verify` reporting style: every finding names the
//! rule that fired, pinpoints `file:line`, states what was observed, and
//! carries a fix hint plus the workspace invariant the rule certifies —
//! a diagnostic should be actionable without opening the audit source.

use std::fmt;

use iatf_obs::json::Json;

/// Identity of an audit rule. Stable ids appear in reports and gate
/// scripts; renaming one is a breaking change for `scripts/verify.sh`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `unsafe` outside the audited path allowlist.
    UnsafePath,
    /// `unsafe` without an adjacent `SAFETY:` justification comment.
    UnsafeJustify,
    /// Atomic `Ordering` use outside a registered concurrency module.
    AtomicModule,
    /// Atomic ordering site without an adjacent `// ordering:` comment.
    AtomicJustify,
    /// `Relaxed` in a protocol-class module whose justification does not
    /// acknowledge the relaxation.
    AtomicRelaxed,
    /// Feature-gated `pub fn` with no matching `#[cfg(not(feature))]`
    /// fallback in the same crate.
    FeatureFallback,
    /// Hand-rolled string-escaping table outside `iatf_obs::json`.
    JsonEscape,
    /// `IATF_*` environment read outside `iatf_obs::env`.
    EnvRead,
    /// `panic!` / `process::exit` in library (non-test, non-bin) code.
    LibPanic,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 9] = [
        RuleId::UnsafePath,
        RuleId::UnsafeJustify,
        RuleId::AtomicModule,
        RuleId::AtomicJustify,
        RuleId::AtomicRelaxed,
        RuleId::FeatureFallback,
        RuleId::JsonEscape,
        RuleId::EnvRead,
        RuleId::LibPanic,
    ];

    /// Stable uppercase identifier used in reports and gates.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnsafePath => "UNSAFE_PATH",
            RuleId::UnsafeJustify => "UNSAFE_JUSTIFY",
            RuleId::AtomicModule => "ATOMIC_MODULE",
            RuleId::AtomicJustify => "ATOMIC_JUSTIFY",
            RuleId::AtomicRelaxed => "ATOMIC_RELAXED",
            RuleId::FeatureFallback => "FEATURE_FALLBACK",
            RuleId::JsonEscape => "JSON_ESCAPE",
            RuleId::EnvRead => "ENV_READ",
            RuleId::LibPanic => "LIB_PANIC",
        }
    }

    /// The workspace invariant this rule certifies.
    pub fn invariant(self) -> &'static str {
        match self {
            RuleId::UnsafePath => {
                "all unsafe code lives inside the audited allowlist documented in DESIGN.md"
            }
            RuleId::UnsafeJustify => {
                "every unsafe site carries an adjacent SAFETY justification"
            }
            RuleId::AtomicModule => {
                "lock-free code is confined to registered concurrency modules with loom or stress coverage"
            }
            RuleId::AtomicJustify => {
                "every atomic memory-ordering choice is justified where it is made"
            }
            RuleId::AtomicRelaxed => {
                "Relaxed in a synchronization protocol is a conscious, documented decision"
            }
            RuleId::FeatureFallback => {
                "feature-gated public API always has a no-op fallback, so downstream crates compile in every feature state"
            }
            RuleId::JsonEscape => {
                "iatf_obs::json is the single JSON escaping implementation; emitters cannot drift"
            }
            RuleId::EnvRead => {
                "IATF_* knobs are parsed only by iatf_obs::env, so the failure policy is uniform"
            }
            RuleId::LibPanic => {
                "library crates report errors as values; they never abort the host process"
            }
        }
    }

    /// How to fix a finding.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::UnsafePath => {
                "move the code into an allowlisted module, or extend the registry in crates/audit/src/registry.rs and DESIGN.md deliberately"
            }
            RuleId::UnsafeJustify => {
                "add a `// SAFETY: …` comment on or directly above the unsafe site stating why the preconditions hold"
            }
            RuleId::AtomicModule => {
                "move the atomics into a registered concurrency module, or register this file (with a Counter/Protocol class) in crates/audit/src/registry.rs"
            }
            RuleId::AtomicJustify => {
                "add a `// ordering: …` comment on or directly above the site explaining the choice of memory ordering"
            }
            RuleId::AtomicRelaxed => {
                "make the justification name Relaxed explicitly and say why no synchronization edge is needed here"
            }
            RuleId::FeatureFallback => {
                "add a `#[cfg(not(feature = …))]` no-op twin, or drop the item gate and branch on the feature inside the body"
            }
            RuleId::JsonEscape => {
                "route the string through iatf_obs::json::escape_into (or the Json builder) instead of escaping by hand"
            }
            RuleId::EnvRead => {
                "read the variable through the iatf_obs::env helpers (env_usize / env_f64 / env_path)"
            }
            RuleId::LibPanic => {
                "return a Result or use unreachable!/debug_assert! for programming errors; only binaries may exit"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One audit finding, pinpointed to a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired.
    pub rule: RuleId,
    /// What was observed at the site.
    pub message: String,
}

impl Diagnostic {
    /// Renders the two-line human report form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    fix: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message,
            self.rule.hint()
        )
    }

    /// JSON object form for `reproduce audit --json`.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("file", self.file.as_str())
            .set("line", self.line as u64)
            .set("rule", self.rule.id())
            .set("message", self.message.as_str())
            .set("invariant", self.rule.invariant())
            .set("fix", self.rule.hint())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}
