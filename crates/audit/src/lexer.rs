//! Minimal line-oriented Rust lexer for the audit rules.
//!
//! No parser crates exist in this build environment, so the audit works
//! from a purpose-built lexer that is *sound for its rules* rather than
//! a full grammar: it separates each line into code text and comment
//! text, blanks out string literals (so `"unsafe"` in a message never
//! trips the unsafe rules), preserves character literals (so an escaping
//! table's `'"' =>` arm stays visible), and tracks `#[cfg(test)]` module
//! spans by brace depth so hygiene rules can skip test code.
//!
//! Known, accepted approximations — each errs toward *over*-reporting,
//! which the audit treats as the safe direction:
//! - A lifetime tick is distinguished from a char literal by lookahead;
//!   exotic forms (`'r#ident`) are not handled (unused in this tree).
//! - `#[cfg(test)]` is only recognized on its own attribute line, which
//!   is how every test module in the workspace is written.

/// One source line, split into its code and comment parts.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code text with strings blanked to `""` and comments removed.
    pub code: String,
    /// Comment text (line, block, and doc comments), concatenated.
    pub comment: String,
    /// The raw line, verbatim (for rules that must see string content).
    pub raw: String,
}

/// A lexed source file.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// Per-line code/comment split, 0-indexed (line 1 is `lines[0]`).
    pub lines: Vec<Line>,
    /// `true` for lines inside a `#[cfg(test)]` module span.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

/// Lexes `source` into per-line code/comment streams.
pub fn lex(source: &str) -> Lexed {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        cur.raw.push(c);
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.raw.push('/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.raw.push('*');
                    i += 2;
                } else if c == '"' {
                    cur.code.push_str("\"\"");
                    state = State::Str { raw_hashes: None };
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"' | '#')) && raw_str_hashes(&chars, i + 1).is_some() {
                    let hashes = raw_str_hashes(&chars, i + 1).unwrap();
                    cur.code.push_str("\"\"");
                    // Re-emit the prefix into raw text as we skip it.
                    for k in 1..=(hashes as usize + 1) {
                        cur.raw.push(chars[i + k]);
                    }
                    state = State::Str { raw_hashes: Some(hashes) };
                    i += hashes as usize + 2;
                } else if c == 'b' && next == Some('"') {
                    cur.code.push('b');
                    i += 1; // the quote is handled on the next iteration
                } else if c == 'b' && next == Some('r') && raw_str_hashes(&chars, i + 2).is_some() {
                    let hashes = raw_str_hashes(&chars, i + 2).unwrap();
                    cur.code.push_str("b\"\"");
                    for k in 1..=(hashes as usize + 2) {
                        cur.raw.push(chars[i + k]);
                    }
                    state = State::Str { raw_hashes: Some(hashes) };
                    i += hashes as usize + 3;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // tick after one (possibly escaped) character.
                    if let Some(len) = char_literal_len(&chars, i) {
                        for k in 0..len {
                            let ch = chars[i + k];
                            cur.code.push(ch);
                            if k > 0 {
                                cur.raw.push(ch);
                            }
                        }
                        i += len;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur.raw.push('/');
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    cur.comment.push_str("/*");
                    cur.raw.push('*');
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            match chars.get(i + 1) {
                                // Backslash-newline continuation: the line
                                // still ends here for numbering purposes.
                                Some('\n') => {
                                    lines.push(std::mem::take(&mut cur));
                                    i += 2;
                                }
                                Some(esc) => {
                                    cur.raw.push(*esc);
                                    i += 2;
                                }
                                None => i += 1,
                            }
                        } else if c == '"' {
                            state = State::Code;
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    Some(hashes) => {
                        if c == '"' && closes_raw_str(&chars, i, hashes) {
                            for k in 1..=hashes as usize {
                                cur.raw.push(chars[i + k]);
                            }
                            state = State::Code;
                            i += hashes as usize + 1;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
    }
    if !cur.raw.is_empty() || !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }

    let in_test = mark_test_spans(&lines);
    Lexed { lines, in_test }
}

/// If `chars[at..]` is the `#…"` part of a raw-string opener, returns
/// the hash count (0 for `r"`).
fn raw_str_hashes(chars: &[char], at: usize) -> Option<u32> {
    let mut hashes = 0u32;
    let mut j = at;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw_str(chars: &[char], at: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(at + k) == Some(&'#'))
}

/// Length (in chars, including both ticks) of a char literal starting at
/// `chars[at] == '\''`, or `None` if this tick starts a lifetime.
fn char_literal_len(chars: &[char], at: usize) -> Option<usize> {
    match chars.get(at + 1)? {
        '\\' => {
            // Escaped char: scan to the closing tick (handles \u{…});
            // starts past the escaped character so `'\''` parses whole.
            let mut j = at + 3;
            while j < chars.len() && j < at + 12 {
                if chars[j] == '\'' {
                    return Some(j - at + 1);
                }
                j += 1;
            }
            None
        }
        '\'' => None, // `''` is not a literal
        _ => (chars.get(at + 2) == Some(&'\'')).then_some(3),
    }
}

/// True for an attribute line gating on the `test` cfg predicate —
/// `#[cfg(test)]` or any `#[cfg(all(…, test, …))]` combination such as
/// the loom model modules' `#[cfg(all(loom, test))]`.
fn is_test_cfg(code: &str) -> bool {
    let Some(at) = code.find("#[cfg(") else {
        return false;
    };
    let clause = &code[at..];
    let mut from = 0;
    while let Some(pos) = clause[from..].find("test") {
        let start = from + pos;
        let end = start + "test".len();
        let bytes = clause.as_bytes();
        let pre = start == 0 || !(bytes[start - 1] == b'_' || bytes[start - 1].is_ascii_alphanumeric());
        let post = end == bytes.len() || !(bytes[end] == b'_' || bytes[end].is_ascii_alphanumeric());
        if pre && post {
            return true;
        }
        from = end;
    }
    false
}

/// Marks lines belonging to `#[cfg(test)] mod … { … }` spans.
fn mark_test_spans(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if is_test_cfg(&lines[i].code) {
            // Find the gated `mod` within the next few lines (skipping
            // further attributes), then span its braces.
            let mut j = i + 1;
            while j < lines.len() && j <= i + 4 {
                let code = lines[j].code.trim();
                if code.contains("mod ") {
                    let mut depth: i64 = 0;
                    let mut opened = false;
                    let mut k = j;
                    while k < lines.len() {
                        for c in lines[k].code.chars() {
                            match c {
                                '{' => {
                                    depth += 1;
                                    opened = true;
                                }
                                '}' => depth -= 1,
                                _ => {}
                            }
                        }
                        in_test[k] = true;
                        if opened && depth <= 0 {
                            break;
                        }
                        k += 1;
                    }
                    in_test[i] = true;
                    i = k;
                    break;
                }
                if code.starts_with("#[") || code.is_empty() {
                    j += 1;
                } else {
                    break;
                }
            }
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_and_comments_split() {
        let lexed = lex("let x = \"unsafe {}\"; // ordering: nope\nunsafe { y() }\n");
        assert!(!lexed.lines[0].code.contains("unsafe"));
        assert!(lexed.lines[0].comment.contains("ordering: nope"));
        assert!(lexed.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn char_literals_survive_but_lifetimes_do_not_confuse() {
        let lexed = lex("match c { '\"' => esc(), _ => {} }\nfn f<'a>(x: &'a str) {}\n");
        assert!(lexed.lines[0].code.contains("'\"' =>"));
        assert!(lexed.lines[1].code.contains("&'a str"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let lexed = lex("let s = r#\"has \"quotes\" and unsafe\"#;\nlet t = \"esc \\\" quote\"; let u = 1;\n");
        assert!(!lexed.lines[0].code.contains("unsafe"));
        assert!(lexed.lines[1].code.contains("let u = 1"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lexed = lex("a(); /* one /* two */ still */ b();\n/* open\nunsafe\n*/ c();\n");
        assert!(lexed.lines[0].code.contains("a()") && lexed.lines[0].code.contains("b()"));
        assert!(!lexed.lines[2].code.contains("unsafe"));
        assert!(lexed.lines[2].comment.contains("unsafe"));
        assert!(lexed.lines[3].code.contains("c()"));
    }

    #[test]
    fn test_module_spans_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let lexed = lex("let b = b\"unsafe\"; let r = br#\"panic!(\"#; done();\n");
        assert!(!lexed.lines[0].code.contains("unsafe"));
        assert!(!lexed.lines[0].code.contains("panic!"));
        assert!(lexed.lines[0].code.contains("done()"));
    }
}
