//! Structured plan-explain reports.
//!
//! These types are the *schema* of `GemmPlan::explain()` /
//! `TrsmPlan::explain()` / `TrmmPlan::explain()` in `iatf-core`: a
//! plain-data description of what a plan will do — kernel sizes, tile
//! grid, pack strategy, predicted work — plus install-time static stats
//! for each kernel the plan can dispatch. They are always available (not
//! feature-gated): explaining a plan is a cold-path operation.

use crate::json::Json;

/// Human- and machine-readable description of one execution plan.
#[derive(Clone, Debug)]
pub struct PlanExplain {
    /// Routine: `"gemm"`, `"trsm"`, or `"trmm"`.
    pub op: String,
    /// Element type: `"f32"`, `"f64"`, `"c32"`, `"c64"`.
    pub dtype: String,
    /// Problem shape `m × n × k` (`k == 0` for triangular ops, where the
    /// triangle side is `m` or `n` depending on `side`).
    pub m: usize,
    /// Columns of the output.
    pub n: usize,
    /// Inner dimension (GEMM only).
    pub k: usize,
    /// Mode string (transpose/side/uplo/diag as rendered by the layout
    /// types, e.g. `"NT"` or `"LNLN"`).
    pub mode: String,
    /// Batch count (number of matrices).
    pub count: usize,
    /// Interleave width `P` (matrices per pack).
    pub p: usize,
    /// Vector width in bits the plan's kernels run at (0 for the scalar
    /// reference backend).
    pub width_bits: usize,
    /// Kernel-registry microarchitecture tag (e.g. `"x86_64-avx2"`) the
    /// plan drew its kernel tables from.
    pub uarch: String,
    /// Number of packs (`⌈count / P⌉`).
    pub packs: usize,
    /// Packs per super-block chosen by the Batch Counter.
    pub group_packs: usize,
    /// Main register-tile kernel `(mr, nr)`.
    pub main_kernel: (usize, usize),
    /// Every distinct tile size in the grid with its multiplicity.
    pub tile_classes: Vec<TileClass>,
    /// Fraction of the output area covered by the main kernel, in `[0,1]`.
    pub main_area_fraction: f64,
    /// Pack decision for operand A: `"packed"` or `"direct"`.
    pub pack_a: String,
    /// Pack decision for operand B: `"packed"`, `"direct"`, or
    /// `"on-demand"` (TRSM/TRMM panel staging).
    pub pack_b: String,
    /// Predicted real-arithmetic FLOPs for one `execute()` over the whole
    /// batch.
    pub predicted_flops: u64,
    /// Predicted bytes written into packing buffers by one `execute()`.
    pub predicted_packed_bytes: u64,
    /// Predicted kernel dispatches for one `execute()`.
    pub predicted_dispatches: u64,
    /// Install-time static stats per dispatchable kernel (empty where no
    /// generator exists for the element type).
    pub kernels: Vec<KernelStats>,
    /// Static-certification summary over the plan's dispatchable kernels
    /// (`None` where the plan dispatches no generated kernels).
    pub verify: Option<VerifySummary>,
}

/// Outcome of statically certifying a plan's dispatchable kernels with
/// `iatf-verify` (register budgets, memory safety, pipeline structure,
/// symbolic semantics). Plain data: the verifier itself lives above this
/// crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifySummary {
    /// Distinct kernels submitted to the verifier.
    pub kernels: u64,
    /// Kernels that certified with zero diagnostics.
    pub certified: u64,
    /// Kernels skipped because their depth exceeds the plan-time
    /// certification cap (certified offline by `reproduce verify` instead).
    pub skipped: u64,
    /// Rules in the verifier's rule set.
    pub rules: u64,
}

impl VerifySummary {
    /// True when every submitted kernel certified.
    pub fn all_certified(&self) -> bool {
        self.certified == self.kernels
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("kernels", self.kernels)
            .set("certified", self.certified)
            .set("skipped", self.skipped)
            .set("rules", self.rules)
            .set("all_certified", self.all_certified())
    }
}

/// One distinct tile size within a plan's grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileClass {
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// Tiles of this size per matrix (one pack, one pass).
    pub tiles: usize,
    /// Whether this is the plan's main kernel size.
    pub is_main: bool,
}

/// Install-time scheduling stats for one generated kernel (the Fig. 5
/// story: modeled cycles before/after the scheduling optimizer, against
/// the issue-port lower bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelStats {
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// Depth the kernel was generated for.
    pub k: usize,
    /// Instructions in the generated kernel.
    pub insts: u64,
    /// Modeled cycles before scheduling.
    pub cycles_before: u64,
    /// Modeled cycles after scheduling.
    pub cycles_after: u64,
    /// Issue-port lower bound on cycles.
    pub port_bound: u64,
}

impl TileClass {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("mr", self.mr)
            .set("nr", self.nr)
            .set("tiles", self.tiles)
            .set("is_main", self.is_main)
    }
}

impl KernelStats {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("mr", self.mr)
            .set("nr", self.nr)
            .set("k", self.k)
            .set("insts", self.insts)
            .set("cycles_before", self.cycles_before)
            .set("cycles_after", self.cycles_after)
            .set("port_bound", self.port_bound)
    }
}

impl PlanExplain {
    /// Total tiles per matrix across all classes.
    pub fn tiles_per_matrix(&self) -> usize {
        self.tile_classes.iter().map(|t| t.tiles).sum()
    }

    /// JSON form (the schema documented in the README).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("op", self.op.as_str())
            .set("dtype", self.dtype.as_str())
            .set(
                "dims",
                Json::object().set("m", self.m).set("n", self.n).set("k", self.k),
            )
            .set("mode", self.mode.as_str())
            .set("count", self.count)
            .set("p", self.p)
            .set("width_bits", self.width_bits)
            .set("uarch", self.uarch.as_str())
            .set("packs", self.packs)
            .set("group_packs", self.group_packs)
            .set(
                "main_kernel",
                Json::object()
                    .set("mr", self.main_kernel.0)
                    .set("nr", self.main_kernel.1),
            )
            .set(
                "tile_classes",
                self.tile_classes.iter().map(TileClass::to_json).collect::<Vec<_>>(),
            )
            .set("main_area_fraction", self.main_area_fraction)
            .set(
                "pack",
                Json::object()
                    .set("a", self.pack_a.as_str())
                    .set("b", self.pack_b.as_str()),
            )
            .set("predicted_flops", self.predicted_flops)
            .set("predicted_packed_bytes", self.predicted_packed_bytes)
            .set("predicted_dispatches", self.predicted_dispatches)
            .set(
                "kernels",
                self.kernels.iter().map(KernelStats::to_json).collect::<Vec<_>>(),
            )
            .set(
                "verify",
                self.verify
                    .as_ref()
                    .map_or(Json::Null, VerifySummary::to_json),
            )
    }

    /// Multi-line human-readable rendering (used by `plan_inspect`).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} {}  {}x{}x{}  mode={}  count={} (P={}, packs={}, group={}, {}-bit {})",
            self.op, self.dtype, self.m, self.n, self.k, self.mode, self.count, self.p,
            self.packs, self.group_packs, self.width_bits, self.uarch,
        );
        let _ = writeln!(
            out,
            "  main kernel {}x{}  main-area {:.1}%  pack A={} B={}",
            self.main_kernel.0,
            self.main_kernel.1,
            100.0 * self.main_area_fraction,
            self.pack_a,
            self.pack_b,
        );
        for t in &self.tile_classes {
            let _ = writeln!(
                out,
                "  tile {}x{} x{}{}",
                t.mr,
                t.nr,
                t.tiles,
                if t.is_main { "  (main)" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "  predicted: {} dispatches, {} flops, {} packed bytes",
            self.predicted_dispatches, self.predicted_flops, self.predicted_packed_bytes,
        );
        for ks in &self.kernels {
            let _ = writeln!(
                out,
                "  kernel {}x{} (k={}): {} insts, {} -> {} cycles (port bound {})",
                ks.mr, ks.nr, ks.k, ks.insts, ks.cycles_before, ks.cycles_after, ks.port_bound,
            );
        }
        if let Some(v) = &self.verify {
            let _ = writeln!(
                out,
                "  verify: {}/{} kernels certified against {} rules{}",
                v.certified,
                v.kernels,
                v.rules,
                if v.skipped > 0 {
                    format!(" ({} skipped by depth cap)", v.skipped)
                } else {
                    String::new()
                },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanExplain {
        PlanExplain {
            op: "gemm".into(),
            dtype: "f64".into(),
            m: 10,
            n: 10,
            k: 8,
            mode: "NN".into(),
            count: 7,
            p: 2,
            width_bits: 128,
            uarch: "x86_64-sse2".into(),
            packs: 4,
            group_packs: 2,
            main_kernel: (4, 4),
            tile_classes: vec![
                TileClass { mr: 4, nr: 4, tiles: 4, is_main: true },
                TileClass { mr: 2, nr: 4, tiles: 2, is_main: false },
                TileClass { mr: 4, nr: 2, tiles: 2, is_main: false },
                TileClass { mr: 2, nr: 2, tiles: 1, is_main: false },
            ],
            main_area_fraction: 0.64,
            pack_a: "packed".into(),
            pack_b: "direct".into(),
            predicted_flops: 11200,
            predicted_packed_bytes: 5120,
            predicted_dispatches: 36,
            kernels: vec![KernelStats {
                mr: 4,
                nr: 4,
                k: 8,
                insts: 224,
                cycles_before: 293,
                cycles_after: 154,
                port_bound: 144,
            }],
            verify: Some(VerifySummary {
                kernels: 4,
                certified: 4,
                skipped: 0,
                rules: 15,
            }),
        }
    }

    #[test]
    fn tiles_per_matrix_sums_classes() {
        assert_eq!(sample().tiles_per_matrix(), 9);
    }

    #[test]
    fn json_has_documented_keys() {
        let s = sample().to_json().to_compact();
        for key in [
            "\"op\"",
            "\"dims\"",
            "\"main_kernel\"",
            "\"tile_classes\"",
            "\"main_area_fraction\"",
            "\"predicted_flops\"",
            "\"predicted_dispatches\"",
            "\"kernels\"",
            "\"port_bound\"",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn text_rendering_mentions_main_kernel() {
        let txt = sample().render_text();
        assert!(txt.contains("main kernel 4x4"));
        assert!(txt.contains("(main)"));
        assert!(txt.contains("verify: 4/4 kernels certified"));
    }

    #[test]
    fn verify_summary_json_and_absence() {
        let s = sample().to_json().to_compact();
        assert!(s.contains("\"verify\":{"), "missing verify object in {s}");
        assert!(s.contains("\"all_certified\":true"));
        let mut none = sample();
        none.verify = None;
        assert!(none.to_json().to_compact().contains("\"verify\":null"));
        assert!(!none.render_text().contains("verify:"));
        let partial = VerifySummary { kernels: 3, certified: 2, skipped: 1, rules: 15 };
        assert!(!partial.all_certified());
        assert!(partial.to_json().to_compact().contains("\"skipped\":1"));
    }
}
