//! Hardened environment-variable parsing for tuning knobs.
//!
//! Every `IATF_*` knob in the workspace goes through these helpers so the
//! failure policy is uniform: an *unset* variable silently yields the
//! default, while a set-but-invalid one (garbage, out of range, non-finite)
//! logs a single-line warning to stderr and falls back to the default.
//! Nothing panics and nothing silently misconfigures — a typo'd
//! `IATF_TRACE_CAPACITY=10k` is visible in the process output instead of
//! quietly shrinking the ring to its default.

use std::path::PathBuf;

fn warn(name: &str, raw: &str, default: &dyn std::fmt::Display, reason: &str) {
    eprintln!("iatf: ignoring {name}={raw:?} ({reason}); using default {default}");
}

/// Reads `name` as a `usize` in `[min, usize::MAX]`.
///
/// Unset ⇒ `default` (silent). Set but non-numeric or below `min` ⇒
/// `default` with a logged warning.
pub fn env_usize(name: &str, default: usize, min: usize) -> usize {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    match raw.trim().parse::<usize>() {
        Ok(v) if v >= min => v,
        Ok(_) => {
            warn(name, &raw, &default, &format!("must be >= {min}"));
            default
        }
        Err(_) => {
            warn(name, &raw, &default, "not an unsigned integer");
            default
        }
    }
}

/// Reads `name` as an `f64` in `[min, max]` (finite).
///
/// Unset ⇒ `default` (silent). Set but non-numeric, non-finite, or out of
/// range ⇒ `default` with a logged warning.
pub fn env_f64(name: &str, default: f64, min: f64, max: f64) -> f64 {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    match raw.trim().parse::<f64>() {
        Ok(v) if v.is_finite() && v >= min && v <= max => v,
        Ok(_) => {
            warn(name, &raw, &default, &format!("must be in [{min}, {max}]"));
            default
        }
        Err(_) => {
            warn(name, &raw, &default, "not a number");
            default
        }
    }
}

/// Reads `name` as a persistence path with the workspace's uniform
/// tri-state policy: set-but-empty disables persistence (`None`), any
/// other set value is used verbatim, and an unset variable falls back to
/// `$HOME/` joined with `home_fallback` (or `None` when `HOME` is also
/// unset). The tuning database and watch envelopes both resolve their
/// on-disk location through this helper.
pub fn env_path(name: &str, home_fallback: &[&str]) -> Option<PathBuf> {
    match std::env::var_os(name) {
        Some(v) if v.is_empty() => None,
        Some(v) => Some(PathBuf::from(v)),
        None => std::env::var_os("HOME").map(|home| {
            home_fallback
                .iter()
                .fold(PathBuf::from(home), |p, seg| p.join(seg))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name: tests run concurrently and
    // the process environment is shared.

    #[test]
    fn unset_yields_default_silently() {
        assert_eq!(env_usize("IATF_TEST_ENV_UNSET_USIZE", 42, 1), 42);
        assert_eq!(env_f64("IATF_TEST_ENV_UNSET_F64", 0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn valid_values_are_accepted() {
        std::env::set_var("IATF_TEST_ENV_OK_USIZE", "128");
        assert_eq!(env_usize("IATF_TEST_ENV_OK_USIZE", 42, 2), 128);
        std::env::set_var("IATF_TEST_ENV_OK_F64", "0.25");
        assert_eq!(env_f64("IATF_TEST_ENV_OK_F64", 0.5, 0.0, 1.0), 0.25);
        std::env::set_var("IATF_TEST_ENV_OK_WS", " 7 ");
        assert_eq!(env_usize("IATF_TEST_ENV_OK_WS", 42, 1), 7);
    }

    #[test]
    fn zero_below_minimum_falls_back() {
        std::env::set_var("IATF_TEST_ENV_ZERO", "0");
        assert_eq!(env_usize("IATF_TEST_ENV_ZERO", 42, 2), 42);
        std::env::set_var("IATF_TEST_ENV_ONE", "1");
        assert_eq!(env_usize("IATF_TEST_ENV_ONE", 42, 2), 42);
    }

    #[test]
    fn garbage_falls_back() {
        for (var, bad) in [
            ("IATF_TEST_ENV_GARBAGE_A", "banana"),
            ("IATF_TEST_ENV_GARBAGE_B", "10k"),
            ("IATF_TEST_ENV_GARBAGE_C", "-5"),
            ("IATF_TEST_ENV_GARBAGE_D", ""),
            ("IATF_TEST_ENV_GARBAGE_E", "1e3"), // usize parse has no exponents
        ] {
            std::env::set_var(var, bad);
            assert_eq!(env_usize(var, 42, 2), 42, "accepted {bad:?}");
        }
    }

    #[test]
    fn path_tristate() {
        std::env::set_var("IATF_TEST_ENV_PATH_EMPTY", "");
        assert_eq!(env_path("IATF_TEST_ENV_PATH_EMPTY", &["x"]), None);
        std::env::set_var("IATF_TEST_ENV_PATH_SET", "/tmp/db.json");
        assert_eq!(
            env_path("IATF_TEST_ENV_PATH_SET", &["x"]),
            Some(PathBuf::from("/tmp/db.json"))
        );
        if let Some(home) = std::env::var_os("HOME") {
            let got = env_path("IATF_TEST_ENV_PATH_UNSET", &["a", "b.json"]);
            assert_eq!(got, Some(PathBuf::from(home).join("a").join("b.json")));
        }
    }

    #[test]
    fn f64_rejects_non_finite_and_out_of_range() {
        for (var, bad) in [
            ("IATF_TEST_ENV_F64_NAN", "NaN"),
            ("IATF_TEST_ENV_F64_INF", "inf"),
            ("IATF_TEST_ENV_F64_NEG", "-0.5"),
            ("IATF_TEST_ENV_F64_BIG", "2.5"),
            ("IATF_TEST_ENV_F64_TXT", "half"),
        ] {
            std::env::set_var(var, bad);
            assert_eq!(env_f64(var, 0.5, 0.0, 1.0), 0.5, "accepted {bad:?}");
        }
    }
}
