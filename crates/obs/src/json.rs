//! Hand-rolled JSON document model, serializer, and parser.
//!
//! No external serialization crates are available in this build
//! environment, so telemetry export is built on this small value tree.
//! Numbers keep their integer/float distinction (`u64` counters must not
//! round-trip through `f64`, which loses precision past 2^53).
//!
//! This is the workspace's *single* JSON implementation: `iatf-tune`
//! parses its db files with [`parse`], `iatf-trace` escapes Chrome-trace
//! strings with [`escape_into`], and `iatf-watch` renders snapshots with
//! the [`Json`] builder — one set of escaping and number-formatting rules
//! that cannot drift between crates.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float; NaN/inf serialize as `null` (JSON has no spelling for
    /// them).
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object builder starting empty.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Adds/overwrites a key on an object (panics on non-objects — a
    /// programming error, not a data error).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(entries) => {
                let value = value.into();
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            // `set` is only reachable through the object-builder API, so a
            // non-object receiver is a construction bug in this crate.
            other => unreachable!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral numeric value. Floats must be exact integers
    /// no larger than 2^53 (the f64-exact range) to qualify.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            Json::Float(v) if *v >= 0.0 && *v <= (1u64 << 53) as f64 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Ensure a decimal point or exponent so readers see a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes). The one escaping routine every emitter in the workspace
/// shares — the Chrome-trace exporter writes its envelope by hand but
/// routes string payloads through here.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Why a document failed to parse (detail is diagnostic only; callers
/// treat every variant as "corrupt").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Short description.
    pub msg: &'static str,
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// Numbers come back as [`Json::UInt`]/[`Json::Int`] when they are exact
/// integers within the f64-exact range (so counters survive a round trip
/// through [`Json::as_u64`]) and [`Json::Float`] otherwise.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected byte"))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates map
                            // to U+FFFD rather than failing the document.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&lo) {
                                        let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                        char::from_u32(c).unwrap_or('\u{fffd}')
                                    } else {
                                        '\u{fffd}'
                                    }
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                // Raw control characters are invalid JSON; everything else
                // passes through (input is already valid UTF-8).
                0x00..=0x1f => return Err(self.err("control char in string")),
                _ => {
                    // Re-borrow the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("bad \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad number"))?;
        let v: f64 = s.parse().map_err(|_| self.err("bad number"))?;
        if !v.is_finite() {
            return Err(self.err("non-finite number"));
        }
        // Preserve the integer/float distinction on the way in, matching
        // the writer's variants: exact integers in the f64-exact range
        // stay integers.
        const EXACT: f64 = (1u64 << 53) as f64;
        if v.fract() == 0.0 && (0.0..=EXACT).contains(&v) {
            Ok(Json::UInt(v as u64))
        } else if v.fract() == 0.0 && (-EXACT..0.0).contains(&v) {
            Ok(Json::Int(v as i64))
        } else {
            Ok(Json::Float(v))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_numbers() {
        let doc = Json::object()
            .set("name", "tab\there \"quoted\"")
            .set("big", u64::MAX)
            .set("neg", -3i64)
            .set("frac", 0.5f64)
            .set("whole_float", 2.0f64)
            .set("nan", f64::NAN)
            .set("flag", true)
            .set("items", vec![Json::UInt(1), Json::Null]);
        let s = doc.to_compact();
        assert_eq!(
            s,
            "{\"name\":\"tab\\there \\\"quoted\\\"\",\"big\":18446744073709551615,\
             \"neg\":-3,\"frac\":0.5,\"whole_float\":2.0,\"nan\":null,\"flag\":true,\
             \"items\":[1,null]}"
        );
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::object().set("a", Json::object().set("b", 1u64)).set(
            "c",
            Json::Array(vec![Json::Bool(false)]),
        );
        let pretty = doc.to_pretty();
        assert!(pretty.contains("\"a\": {\n    \"b\": 1\n  }"));
        assert!(pretty.starts_with("{\n"));
        assert!(pretty.ends_with("\n}"));
    }

    #[test]
    fn set_overwrites_existing_key() {
        let doc = Json::object().set("k", 1u64).set("k", 2u64);
        assert_eq!(doc.to_compact(), "{\"k\":2}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::object().to_pretty(), "{}");
        assert_eq!(Json::Array(vec![]).to_compact(), "[]");
    }

    #[test]
    fn parses_a_representative_db_document() {
        let doc = parse(
            r#"{
              "schema": 1,
              "generation": 42,
              "entries": [
                {"key": "0:0:8:8:8:0:0:2048", "pack": 0, "group_packs": 16,
                 "l1_fraction": 0.5, "parallel": false,
                 "tuned_gflops": 3.25, "heuristic_gflops": 3.0, "noise": 0.02}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("generation").and_then(Json::as_u64), Some(42));
        let entries = doc.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("key").and_then(Json::as_str), Some("0:0:8:8:8:0:0:2048"));
        assert_eq!(e.get("parallel").and_then(Json::as_bool), Some(false));
        assert_eq!(e.get("l1_fraction").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let doc = parse(r#"{"s": "a\"b\\c\nA😀", "a": [1, -2.5, 1e3, true, null]}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\\c\nA😀"));
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1} extra",
            "nul",
            "\"unterminated",
            "{\"a\": 1e999}", // overflows to inf
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_is_strict_about_integrality() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("true").unwrap().as_u64(), None);
        // Builder-side values keep full u64 range regardless of f64 limits.
        assert_eq!(Json::UInt(u64::MAX).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn writer_output_reparses_to_equal_values() {
        let doc = Json::object()
            .set("s", "tab\there \"quoted\" \\slash")
            .set("n", 12u64)
            .set("f", -2.5f64)
            .set("b", true)
            .set("nested", Json::Array(vec![Json::Null, Json::UInt(7)]));
        for text in [doc.to_compact(), doc.to_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back, doc, "round trip failed for {text}");
        }
    }

    #[test]
    fn escape_into_matches_string_serialization() {
        let s = "a\"b\\c\nd\u{1}";
        let mut bare = String::new();
        escape_into(&mut bare, s);
        assert_eq!(format!("\"{bare}\""), Json::Str(s.to_string()).to_compact());
    }
}
