//! Hand-rolled JSON document model and serializer.
//!
//! No external serialization crates are available in this build
//! environment, so telemetry export is built on this small value tree.
//! Numbers keep their integer/float distinction (`u64` counters must not
//! round-trip through `f64`, which loses precision past 2^53).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float; NaN/inf serialize as `null` (JSON has no spelling for
    /// them).
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object builder starting empty.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Adds/overwrites a key on an object (panics on non-objects — a
    /// programming error, not a data error).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(entries) => {
                let value = value.into();
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Ensure a decimal point or exponent so readers see a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_numbers() {
        let doc = Json::object()
            .set("name", "tab\there \"quoted\"")
            .set("big", u64::MAX)
            .set("neg", -3i64)
            .set("frac", 0.5f64)
            .set("whole_float", 2.0f64)
            .set("nan", f64::NAN)
            .set("flag", true)
            .set("items", vec![Json::UInt(1), Json::Null]);
        let s = doc.to_compact();
        assert_eq!(
            s,
            "{\"name\":\"tab\\there \\\"quoted\\\"\",\"big\":18446744073709551615,\
             \"neg\":-3,\"frac\":0.5,\"whole_float\":2.0,\"nan\":null,\"flag\":true,\
             \"items\":[1,null]}"
        );
    }

    #[test]
    fn pretty_round_trips_structure() {
        let doc = Json::object().set("a", Json::object().set("b", 1u64)).set(
            "c",
            Json::Array(vec![Json::Bool(false)]),
        );
        let pretty = doc.to_pretty();
        assert!(pretty.contains("\"a\": {\n    \"b\": 1\n  }"));
        assert!(pretty.starts_with("{\n"));
        assert!(pretty.ends_with("\n}"));
    }

    #[test]
    fn set_overwrites_existing_key() {
        let doc = Json::object().set("k", 1u64).set("k", 2u64);
        assert_eq!(doc.to_compact(), "{\"k\":2}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::object().to_pretty(), "{}");
        assert_eq!(Json::Array(vec![]).to_compact(), "[]");
    }
}
