//! Global metrics registry: relaxed atomic counters and log2 histograms.
//!
//! Every probe in this module is `#[inline(always)]` and compiles to an
//! empty body unless the `enabled` cargo feature is on, so instrumented
//! call sites in the planner/executor hot paths cost nothing by default.
//! With the feature on, counters are relaxed atomics — safe under the
//! `parallel` execution path, imprecise only in ordering, never in totals.

use crate::json::Json;
use crate::timer::Phase;
#[cfg(feature = "enabled")]
use crate::timer::PHASES;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};

/// Which BLAS-3 routine a probe refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Batched compact GEMM.
    Gemm = 0,
    /// Batched compact TRSM.
    Trsm = 1,
    /// Batched compact TRMM.
    Trmm = 2,
}

/// All ops, in counter-slot order.
pub const OPS: [Op; 3] = [Op::Gemm, Op::Trsm, Op::Trmm];

impl Op {
    /// Lower-case routine name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Gemm => "gemm",
            Op::Trsm => "trsm",
            Op::Trmm => "trmm",
        }
    }
}

/// Kernel register-tile sides never exceed 5 (`TRSM_TMAX`); 8 leaves slack.
pub const MAX_TILE_SIDE: usize = 8;

/// Number of log2 buckets: bucket `i` holds values `v` with
/// `bit_length(v) == i`, i.e. bucket 0 is `v == 0`, bucket 1 is `v == 1`,
/// bucket `i` is `2^(i-1) <= v < 2^i`.
pub const HIST_BUCKETS: usize = 65;

#[cfg(feature = "enabled")]
struct Histogram {
    buckets: Vec<AtomicU64>,
}

#[cfg(feature = "enabled")]
impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        // ordering: Relaxed — monotonic telemetry counter.
        self.buckets[bucket].fetch_add(1, Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        // ordering: Relaxed — advisory snapshot read.
        self.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            // ordering: Relaxed — test-isolation reset; callers quiesce first.
            b.store(0, Relaxed);
        }
    }
}

#[cfg(feature = "enabled")]
struct Registry {
    plan_builds: [AtomicU64; 3],
    plan_commands: AtomicU64,
    executes: [AtomicU64; 3],
    dispatch: Vec<AtomicU64>, // [op][mr][nr] flattened
    main_tile_hits: AtomicU64,
    edge_tile_hits: AtomicU64,
    fallback_hits: AtomicU64,
    packed_bytes_a: AtomicU64,
    packed_bytes_b: AtomicU64,
    batch_counts: Histogram,
    plan_cache: [AtomicU64; 4], // hits, misses, evictions, bypasses
    arena_leases: AtomicU64,
    arena_reuses: AtomicU64,
    arena_bytes_reused: AtomicU64,
    arena_bytes_grown: AtomicU64,
    superblock_tasks: [AtomicU64; 3],
    superblock_packs: Histogram,
    tune: [AtomicU64; 6], // sweeps, applies, misses, db_corrupt, persists, retunes
    pmu: [AtomicU64; 5],  // opened, unsupported, permission, no_pmu, open_failed
    phase_hist: Vec<Histogram>,
}

/// Per-thread phase accumulators. Worker threads in the parallel executors
/// each own one slot, so phase time is attributed to the thread that spent
/// it — a single global accumulator would report per-phase sums that
/// exceed wall time with no way to tell how the work was distributed.
/// Totals across threads are exact either way.
#[cfg(feature = "enabled")]
struct ThreadPhaseSlot {
    tid: u64,
    phase_ns: [AtomicU64; PHASES.len()],
    phase_calls: [AtomicU64; PHASES.len()],
}

#[cfg(feature = "enabled")]
fn phase_slots() -> &'static Mutex<Vec<Arc<ThreadPhaseSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<ThreadPhaseSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "enabled")]
thread_local! {
    static PHASE_SLOT: Arc<ThreadPhaseSlot> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let slot = Arc::new(ThreadPhaseSlot {
            // ordering: Relaxed — thread-id allocator; uniqueness needs only atomicity.
            tid: NEXT_TID.fetch_add(1, Relaxed),
            phase_ns: Default::default(),
            phase_calls: Default::default(),
        });
        phase_slots().lock().unwrap().push(Arc::clone(&slot));
        slot
    };
}

#[cfg(feature = "enabled")]
impl Registry {
    fn new() -> Self {
        Self {
            plan_builds: Default::default(),
            plan_commands: AtomicU64::new(0),
            executes: Default::default(),
            dispatch: (0..3 * MAX_TILE_SIDE * MAX_TILE_SIDE)
                .map(|_| AtomicU64::new(0))
                .collect(),
            main_tile_hits: AtomicU64::new(0),
            edge_tile_hits: AtomicU64::new(0),
            fallback_hits: AtomicU64::new(0),
            packed_bytes_a: AtomicU64::new(0),
            packed_bytes_b: AtomicU64::new(0),
            batch_counts: Histogram::new(),
            plan_cache: Default::default(),
            arena_leases: AtomicU64::new(0),
            arena_reuses: AtomicU64::new(0),
            arena_bytes_reused: AtomicU64::new(0),
            arena_bytes_grown: AtomicU64::new(0),
            superblock_tasks: Default::default(),
            superblock_packs: Histogram::new(),
            tune: Default::default(),
            pmu: Default::default(),
            phase_hist: (0..PHASES.len()).map(|_| Histogram::new()).collect(),
        }
    }

    fn dispatch_slot(&self, op: Op, mr: usize, nr: usize) -> &AtomicU64 {
        let mr = mr.min(MAX_TILE_SIDE - 1);
        let nr = nr.min(MAX_TILE_SIDE - 1);
        &self.dispatch[(op as usize * MAX_TILE_SIDE + mr) * MAX_TILE_SIDE + nr]
    }
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// One plan was built for `op` over a batch of `count` matrices.
#[inline(always)]
pub fn count_plan_build(op: Op, count: usize) {
    #[cfg(feature = "enabled")]
    {
        let r = registry();
        // ordering: Relaxed — monotonic telemetry counters; no payload is published through them (readers treat every snapshot as advisory).
        r.plan_builds[op as usize].fetch_add(1, Relaxed);
        r.batch_counts.record(count as u64);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (op, count);
}

/// A plan rendered `n` commands in its command-queue view.
#[inline(always)]
pub fn count_plan_commands(n: usize) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().plan_commands.fetch_add(n as u64, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = n;
}

/// One `execute()` call ran for `op`.
#[inline(always)]
pub fn count_execute(op: Op) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().executes[op as usize].fetch_add(1, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = op;
}

/// One register-tile kernel dispatch of size `mr × nr`; `main` says whether
/// it was the plan's main kernel (vs an edge kernel).
#[inline(always)]
pub fn count_dispatch(op: Op, mr: usize, nr: usize, main: bool) {
    #[cfg(feature = "enabled")]
    {
        let r = registry();
        // ordering: Relaxed — monotonic telemetry counters.
        r.dispatch_slot(op, mr, nr).fetch_add(1, Relaxed);
        if main {
            r.main_tile_hits.fetch_add(1, Relaxed);
        } else {
            r.edge_tile_hits.fetch_add(1, Relaxed);
        }
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (op, mr, nr, main);
}

/// A call was served through a non-compact fallback route (convert to the
/// compact layout, run, convert back) instead of natively on compact
/// operands.
#[inline(always)]
pub fn count_fallback() {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().fallback_hits.fetch_add(1, Relaxed);
}

/// `bytes` of operand-A data were written into a packing buffer.
#[inline(always)]
pub fn count_packed_bytes_a(bytes: usize) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().packed_bytes_a.fetch_add(bytes as u64, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = bytes;
}

/// `bytes` of operand-B data were written into a packing buffer.
#[inline(always)]
pub fn count_packed_bytes_b(bytes: usize) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().packed_bytes_b.fetch_add(bytes as u64, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = bytes;
}

/// Outcome of one plan-cache lookup (or deliberate skip).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// A matching plan was found and returned.
    Hit = 0,
    /// No matching plan; one was built and inserted.
    Miss = 1,
    /// An entry was discarded to make room (accompanies some misses).
    Eviction = 2,
    /// The caller asked for a fresh plan, skipping the cache entirely.
    Bypass = 3,
}

/// One plan-cache event occurred.
#[inline(always)]
pub fn count_plan_cache(event: CacheEvent) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().plan_cache[event as usize].fetch_add(1, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = event;
}

/// One pack-arena lease was taken; `reused_bytes > 0` means a warm buffer of
/// that many initialized bytes was recycled instead of allocating.
#[inline(always)]
pub fn count_arena_lease(reused_bytes: usize) {
    #[cfg(feature = "enabled")]
    {
        let r = registry();
        // ordering: Relaxed — monotonic telemetry counters.
        r.arena_leases.fetch_add(1, Relaxed);
        if reused_bytes > 0 {
            r.arena_reuses.fetch_add(1, Relaxed);
            r.arena_bytes_reused.fetch_add(reused_bytes as u64, Relaxed);
        }
    }
    #[cfg(not(feature = "enabled"))]
    let _ = reused_bytes;
}

/// A pack buffer grew (first-touch zero fill) by `bytes`.
#[inline(always)]
pub fn count_arena_bytes_grown(bytes: usize) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().arena_bytes_grown.fetch_add(bytes as u64, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = bytes;
}

/// One super-block of `packs` packs was dispatched as a unit of work (the
/// executor's pack-then-compute granularity, serial or parallel).
#[inline(always)]
pub fn count_superblock(op: Op, packs: usize) {
    #[cfg(feature = "enabled")]
    {
        let r = registry();
        // ordering: Relaxed — monotonic telemetry counters.
        r.superblock_tasks[op as usize].fetch_add(1, Relaxed);
        r.superblock_packs.record(packs as u64);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (op, packs);
}

/// One autotuner event occurred (see `crates/tune`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TuneEvent {
    /// A micro-benchmark sweep ran for one input fingerprint.
    Sweep = 0,
    /// A planner consulted the tuning db and applied a tuned entry.
    Apply = 1,
    /// A planner consulted the tuning db and found no entry.
    Miss = 2,
    /// A persisted db file was rejected (unreadable, bad schema, or
    /// corrupt) and the process fell back to heuristics.
    DbCorrupt = 3,
    /// The db was persisted to disk (atomic temp-file + rename).
    Persist = 4,
    /// A drift-flagged entry was evicted and re-swept (watch remediation).
    Retune = 5,
}

/// One autotuner event occurred.
#[inline(always)]
pub fn count_tune(event: TuneEvent) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().tune[event as usize].fetch_add(1, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = event;
}

/// Outcome of opening the PMU sampling source (see `crates/trace`). The
/// degraded categories record *why* hardware counters were unavailable, so
/// a roofline report with empty measurement columns is diagnosable from
/// telemetry alone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PmuEvent {
    /// A live counter group opened.
    Opened = 0,
    /// Not a Linux host (or no syscall number for the architecture).
    Unsupported = 1,
    /// The kernel refused (`perf_event_paranoid`, container policy).
    Permission = 2,
    /// No PMU driver / syscall filtered out.
    NoPmu = 3,
    /// Any other open failure.
    OpenFailed = 4,
}

/// One PMU source open was attempted with this outcome.
#[inline(always)]
pub fn count_pmu(event: PmuEvent) {
    #[cfg(feature = "enabled")]
    // ordering: Relaxed — monotonic telemetry counter.
    registry().pmu[event as usize].fetch_add(1, Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = event;
}

/// Current count for one PMU event slot. Always 0 with the feature off.
pub fn pmu_count(event: PmuEvent) -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ordering: Relaxed — advisory read of a monotonic counter.
        registry().pmu[event as usize].load(Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = event;
        0
    }
}

/// Current count for one autotuner event slot. Always 0 with the feature
/// off.
pub fn tune_count(event: TuneEvent) -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ordering: Relaxed — advisory read of a monotonic counter.
        registry().tune[event as usize].load(Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = event;
        0
    }
}

/// One timed span of `phase` took `ns` nanoseconds (called by the guard in
/// [`crate::timer`], not by instrumented code directly). Time and call
/// counts land in the *calling thread's* slot; the duration histogram
/// stays global.
#[inline(always)]
pub fn record_phase(phase: Phase, ns: u64) {
    #[cfg(feature = "enabled")]
    {
        PHASE_SLOT.with(|s| {
            // ordering: Relaxed — per-thread monotonic accumulators; totals are read at quiescence.
            s.phase_ns[phase as usize].fetch_add(ns, Relaxed);
            s.phase_calls[phase as usize].fetch_add(1, Relaxed);
        });
        registry().phase_hist[phase as usize].record(ns);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (phase, ns);
}

/// Current dispatch count for one `(op, mr, nr)` kernel slot. Always 0 with
/// the feature off.
pub fn dispatch_count(op: Op, mr: usize, nr: usize) -> u64 {
    #[cfg(feature = "enabled")]
    {
        // ordering: Relaxed — advisory read of a monotonic counter.
        registry().dispatch_slot(op, mr, nr).load(Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (op, mr, nr);
        0
    }
}

/// Zeroes every counter and histogram (test isolation; with the feature off
/// there is nothing to zero).
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        let r = registry();
        // ordering: Relaxed — test-isolation reset; callers quiesce first.
        for c in &r.plan_builds {
            c.store(0, Relaxed);
        }
        r.plan_commands.store(0, Relaxed);
        for c in &r.executes {
            c.store(0, Relaxed);
        }
        for c in &r.dispatch {
            c.store(0, Relaxed);
        }
        r.main_tile_hits.store(0, Relaxed);
        r.edge_tile_hits.store(0, Relaxed);
        r.fallback_hits.store(0, Relaxed);
        r.packed_bytes_a.store(0, Relaxed);
        r.packed_bytes_b.store(0, Relaxed);
        r.batch_counts.reset();
        for c in &r.plan_cache {
            c.store(0, Relaxed);
        }
        r.arena_leases.store(0, Relaxed);
        r.arena_reuses.store(0, Relaxed);
        r.arena_bytes_reused.store(0, Relaxed);
        r.arena_bytes_grown.store(0, Relaxed);
        for c in &r.superblock_tasks {
            c.store(0, Relaxed);
        }
        r.superblock_packs.reset();
        for c in &r.tune {
            c.store(0, Relaxed);
        }
        for c in &r.pmu {
            c.store(0, Relaxed);
        }
        for h in &r.phase_hist {
            h.reset();
        }
        // ordering: Relaxed — continuing the quiesced-reset stores above.
        for slot in phase_slots().lock().unwrap().iter() {
            for c in &slot.phase_ns {
                c.store(0, Relaxed);
            }
            for c in &slot.phase_calls {
                c.store(0, Relaxed);
            }
        }
    }
}

/// Whether the `enabled` feature was compiled in.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Point-in-time copy of every metric (all zeros with the feature off).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Whether counters were compiled in (`false` ⇒ all fields are zero).
    pub enabled: bool,
    /// Plans built, per op (`OPS` order).
    pub plan_builds: [u64; 3],
    /// Total commands across all `commands()` renderings.
    pub plan_commands: u64,
    /// `execute()` calls, per op.
    pub executes: [u64; 3],
    /// Non-zero kernel-dispatch slots.
    pub dispatch: Vec<DispatchCount>,
    /// Dispatches that used the plan's main kernel.
    pub main_tile_hits: u64,
    /// Dispatches that used an edge kernel.
    pub edge_tile_hits: u64,
    /// Calls routed to a non-compact fallback.
    pub fallback_hits: u64,
    /// Bytes packed into A-panel buffers.
    pub packed_bytes_a: u64,
    /// Bytes packed into B-panel buffers.
    pub packed_bytes_b: u64,
    /// log2 histogram of batch counts seen at plan build.
    pub batch_counts: Vec<u64>,
    /// Plan-cache lookups, in `CacheEvent` order: hits, misses, evictions,
    /// bypasses.
    pub plan_cache: [u64; 4],
    /// Pack-arena leases taken.
    pub arena_leases: u64,
    /// Leases that recycled a warm buffer (no allocation, no zero fill).
    pub arena_reuses: u64,
    /// Initialized bytes handed back to executes without re-zeroing.
    pub arena_bytes_reused: u64,
    /// Bytes first-touch zero-filled by buffer growth.
    pub arena_bytes_grown: u64,
    /// Super-block work units dispatched, per op.
    pub superblock_tasks: [u64; 3],
    /// log2 histogram of packs per super-block task.
    pub superblock_packs: Vec<u64>,
    /// Autotuner events, in `TuneEvent` order: sweeps, applies, misses,
    /// db-corruptions, persists, retunes.
    pub tune: [u64; 6],
    /// PMU source opens, in `PmuEvent` order: opened, unsupported,
    /// permission, no-pmu, open-failed.
    pub pmu: [u64; 5],
    /// Per-phase timing totals (summed across threads).
    pub phases: Vec<PhaseSnapshot>,
    /// Per-thread phase breakdown (threads that recorded at least one
    /// span). `phases` above is exactly the element-wise sum of these.
    pub threads: Vec<ThreadPhaseSnapshot>,
}

/// Phase timing recorded by one thread.
#[derive(Clone, Debug)]
pub struct ThreadPhaseSnapshot {
    /// Recorder-assigned thread id (registration order, from 1).
    pub tid: u64,
    /// Spans recorded by this thread, in `PHASES` order.
    pub calls: [u64; 6],
    /// Nanoseconds this thread spent, in `PHASES` order.
    pub total_ns: [u64; 6],
}

/// One non-zero kernel-dispatch counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchCount {
    /// Routine.
    pub op: Op,
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// Dispatches observed.
    pub count: u64,
}

/// Timing totals for one phase.
#[derive(Clone, Debug)]
pub struct PhaseSnapshot {
    /// Which phase.
    pub phase: Phase,
    /// Spans recorded.
    pub calls: u64,
    /// Total nanoseconds across spans.
    pub total_ns: u64,
    /// log2 histogram of span durations (ns).
    pub hist: Vec<u64>,
}

/// Snapshot of the global registry.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        let r = registry();
        let mut dispatch = Vec::new();
        for op in OPS {
            for mr in 0..MAX_TILE_SIDE {
                for nr in 0..MAX_TILE_SIDE {
                    // ordering: Relaxed — advisory snapshot read of an independent counter.
                    let count = r.dispatch_slot(op, mr, nr).load(Relaxed);
                    if count > 0 {
                        dispatch.push(DispatchCount { op, mr, nr, count });
                    }
                }
            }
        }
        let mut threads: Vec<ThreadPhaseSnapshot> = phase_slots()
            .lock()
            .unwrap()
            .iter()
            .map(|s| ThreadPhaseSnapshot {
                tid: s.tid,
                // ordering: Relaxed — advisory snapshot of per-thread accumulators.
                calls: std::array::from_fn(|i| s.phase_calls[i].load(Relaxed)),
                total_ns: std::array::from_fn(|i| s.phase_ns[i].load(Relaxed)),
            })
            .filter(|t| t.calls.iter().any(|&c| c > 0))
            .collect();
        threads.sort_by_key(|t| t.tid);
        MetricsSnapshot {
            enabled: true,
            // ordering: Relaxed — advisory snapshot; counters are read independently, not as a consistent cut.
            plan_builds: std::array::from_fn(|i| r.plan_builds[i].load(Relaxed)),
            plan_commands: r.plan_commands.load(Relaxed),
            executes: std::array::from_fn(|i| r.executes[i].load(Relaxed)),
            dispatch,
            main_tile_hits: r.main_tile_hits.load(Relaxed),
            edge_tile_hits: r.edge_tile_hits.load(Relaxed),
            fallback_hits: r.fallback_hits.load(Relaxed),
            packed_bytes_a: r.packed_bytes_a.load(Relaxed),
            packed_bytes_b: r.packed_bytes_b.load(Relaxed),
            batch_counts: r.batch_counts.snapshot(),
            plan_cache: std::array::from_fn(|i| r.plan_cache[i].load(Relaxed)),
            arena_leases: r.arena_leases.load(Relaxed),
            arena_reuses: r.arena_reuses.load(Relaxed),
            arena_bytes_reused: r.arena_bytes_reused.load(Relaxed),
            arena_bytes_grown: r.arena_bytes_grown.load(Relaxed),
            superblock_tasks: std::array::from_fn(|i| r.superblock_tasks[i].load(Relaxed)),
            superblock_packs: r.superblock_packs.snapshot(),
            tune: std::array::from_fn(|i| r.tune[i].load(Relaxed)),
            pmu: std::array::from_fn(|i| r.pmu[i].load(Relaxed)),
            phases: PHASES
                .iter()
                .map(|&p| PhaseSnapshot {
                    phase: p,
                    calls: threads
                        .iter()
                        .map(|t| t.calls[p as usize])
                        .sum(),
                    total_ns: threads
                        .iter()
                        .map(|t| t.total_ns[p as usize])
                        .sum(),
                    hist: r.phase_hist[p as usize].snapshot(),
                })
                .collect(),
            threads,
        }
    }
    #[cfg(not(feature = "enabled"))]
    MetricsSnapshot::default()
}

impl MetricsSnapshot {
    /// Fraction of dispatches that hit an edge kernel (0 when none ran).
    pub fn edge_rate(&self) -> f64 {
        let total = self.main_tile_hits + self.edge_tile_hits;
        if total == 0 {
            0.0
        } else {
            self.edge_tile_hits as f64 / total as f64
        }
    }

    /// JSON document for telemetry export.
    pub fn to_json(&self) -> Json {
        let dispatch = self
            .dispatch
            .iter()
            .map(|d| {
                Json::object()
                    .set("op", d.op.name())
                    .set("mr", d.mr)
                    .set("nr", d.nr)
                    .set("count", d.count)
            })
            .collect::<Vec<_>>();
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::object()
                    .set("phase", p.phase.name())
                    .set("calls", p.calls)
                    .set("total_ns", p.total_ns)
                    .set("hist_log2_ns", hist_json(&p.hist))
            })
            .collect::<Vec<_>>();
        let threads = self
            .threads
            .iter()
            .map(|t| {
                let per_phase = crate::timer::PHASES
                    .iter()
                    .filter(|&&p| t.calls[p as usize] > 0)
                    .map(|&p| {
                        Json::object()
                            .set("phase", p.name())
                            .set("calls", t.calls[p as usize])
                            .set("total_ns", t.total_ns[p as usize])
                    })
                    .collect::<Vec<_>>();
                Json::object().set("tid", t.tid).set("phases", per_phase)
            })
            .collect::<Vec<_>>();
        Json::object()
            .set("enabled", self.enabled)
            .set(
                "plan_builds",
                Json::object()
                    .set("gemm", self.plan_builds[0])
                    .set("trsm", self.plan_builds[1])
                    .set("trmm", self.plan_builds[2]),
            )
            .set("plan_commands", self.plan_commands)
            .set(
                "executes",
                Json::object()
                    .set("gemm", self.executes[0])
                    .set("trsm", self.executes[1])
                    .set("trmm", self.executes[2]),
            )
            .set("kernel_dispatches", dispatch)
            .set("main_tile_hits", self.main_tile_hits)
            .set("edge_tile_hits", self.edge_tile_hits)
            .set("edge_rate", self.edge_rate())
            .set("fallback_hits", self.fallback_hits)
            .set(
                "packed_bytes",
                Json::object()
                    .set("a", self.packed_bytes_a)
                    .set("b", self.packed_bytes_b),
            )
            .set("batch_counts_log2", hist_json(&self.batch_counts))
            .set(
                "plan_cache",
                Json::object()
                    .set("hits", self.plan_cache[0])
                    .set("misses", self.plan_cache[1])
                    .set("evictions", self.plan_cache[2])
                    .set("bypasses", self.plan_cache[3]),
            )
            .set(
                "arena",
                Json::object()
                    .set("leases", self.arena_leases)
                    .set("reuses", self.arena_reuses)
                    .set("bytes_reused", self.arena_bytes_reused)
                    .set("bytes_grown", self.arena_bytes_grown),
            )
            .set(
                "superblocks",
                Json::object()
                    .set("gemm", self.superblock_tasks[0])
                    .set("trsm", self.superblock_tasks[1])
                    .set("trmm", self.superblock_tasks[2])
                    .set("packs_log2", hist_json(&self.superblock_packs)),
            )
            .set(
                "tune",
                Json::object()
                    .set("sweeps", self.tune[0])
                    .set("applies", self.tune[1])
                    .set("misses", self.tune[2])
                    .set("db_corrupt", self.tune[3])
                    .set("persists", self.tune[4])
                    .set("retunes", self.tune[5]),
            )
            .set(
                "pmu",
                Json::object()
                    .set("opened", self.pmu[0])
                    .set("unsupported", self.pmu[1])
                    .set("permission_denied", self.pmu[2])
                    .set("no_pmu", self.pmu[3])
                    .set("open_failed", self.pmu[4]),
            )
            .set("phases", phases)
            .set("threads", threads)
    }
}

/// Renders a log2 histogram as `[{bucket, lo, hi, count}]`, dropping empty
/// buckets. Bucket `i` covers `[2^(i-1), 2^i)`; bucket 0 is exactly 0.
fn hist_json(buckets: &[u64]) -> Vec<Json> {
    buckets
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| {
            let lo: u64 = if i <= 1 { i as u64 } else { 1u64 << (i - 1) };
            let hi: u64 = if i == 0 {
                0
            } else if i >= 64 {
                u64::MAX
            } else {
                (1u64 << i) - 1
            };
            Json::object()
                .set("bucket", i)
                .set("lo", lo)
                .set("hi", hi)
                .set("count", c)
        })
        .collect()
}
