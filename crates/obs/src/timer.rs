//! Scoped phase timers.
//!
//! `phase(Phase::PackA)` returns a guard; when it drops, the elapsed
//! monotonic time is recorded into the global registry under that phase.
//! Guards nest freely (each span is recorded independently). With the
//! `enabled` feature off the guard is a zero-sized type with **no Drop
//! impl**, so the whole mechanism compiles away.

#[cfg(feature = "enabled")]
use crate::metrics::record_phase;

/// Execution phases of a plan, matching the paper's pack/compute split.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Building an execution plan (run-time stage).
    PlanBuild = 0,
    /// Packing operand A (GEMM pack-A, TRSM/TRMM triangular pack).
    PackA = 1,
    /// Packing operand B (GEMM pack-B).
    PackB = 2,
    /// Register-tile kernel execution.
    Compute = 3,
    /// α-scaling / B-panel staging in TRSM & TRMM.
    Scale = 4,
    /// Writing solved panels back from packed scratch.
    Unpack = 5,
}

/// All phases, in counter-slot order.
pub const PHASES: [Phase; 6] = [
    Phase::PlanBuild,
    Phase::PackA,
    Phase::PackB,
    Phase::Compute,
    Phase::Scale,
    Phase::Unpack,
];

impl Phase {
    /// Snake-case phase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::PlanBuild => "plan_build",
            Phase::PackA => "pack_a",
            Phase::PackB => "pack_b",
            Phase::Compute => "compute",
            Phase::Scale => "scale",
            Phase::Unpack => "unpack",
        }
    }
}

/// Live timing span; records on drop. Zero-sized (and drop-free) with the
/// `enabled` feature off.
#[must_use = "a phase guard measures until it drops; binding it to _ ends the span immediately"]
pub struct PhaseGuard {
    #[cfg(feature = "enabled")]
    phase: Phase,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

/// Opens a timing span for `phase`.
#[inline(always)]
pub fn phase(phase: Phase) -> PhaseGuard {
    #[cfg(feature = "enabled")]
    {
        PhaseGuard {
            phase,
            start: std::time::Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = phase;
        PhaseGuard {}
    }
}

#[cfg(feature = "enabled")]
impl Drop for PhaseGuard {
    fn drop(&mut self) {
        // u64 nanoseconds saturate after ~584 years of span; cast is safe.
        record_phase(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod zero_size_tests {
    use super::*;

    #[test]
    fn guard_is_zero_sized_when_disabled() {
        assert_eq!(std::mem::size_of::<PhaseGuard>(), 0);
        assert!(!std::mem::needs_drop::<PhaseGuard>());
    }
}

#[cfg(all(test, feature = "enabled"))]
mod recording_tests {
    use super::*;

    #[test]
    fn guard_carries_state_when_enabled() {
        // Counter-dependent span assertions live in the crate-level
        // round-trip test (the registry is global and tests run
        // concurrently); here only check the guard is a real timer.
        assert!(std::mem::size_of::<PhaseGuard>() > 0);
        assert!(std::mem::needs_drop::<PhaseGuard>());
    }
}
