//! Zero-cost instrumentation for the IATF runtime.
//!
//! Three facilities, one crate, no dependencies:
//!
//! * [`metrics`] — a global registry of relaxed atomic counters and log2
//!   histograms: plan builds, command counts, kernel dispatches keyed by
//!   `(op, mr, nr)`, packed bytes, and main/edge/fallback hit rates.
//! * [`timer`] — scoped monotonic phase timers ([`timer::phase`] returns a
//!   guard that records on drop) covering plan build, pack-A, pack-B,
//!   compute, scale, and unpack phases.
//! * [`explain`] — the schema of the plan explainers (`*Plan::explain()`
//!   in `iatf-core`): structured, JSON-exportable descriptions of what a
//!   plan will do, including install-time kernel scheduling stats.
//!
//! The counters and timers are compile-time no-ops unless the `enabled`
//! cargo feature is on (`--features obs` at the workspace level): probe
//! functions are empty `#[inline(always)]` bodies and the timing guard is
//! a zero-sized type without a `Drop` impl. The explainers and the
//! [`json`] serializer/parser are *not* gated — explaining a plan is a
//! cold-path operation and always available. The [`env`] helpers give
//! every `IATF_*` knob the same reject-garbage-loudly fallback policy.

#![forbid(unsafe_code)]

pub mod env;
pub mod explain;
pub mod json;
pub mod metrics;
pub mod timer;

pub use explain::{KernelStats, PlanExplain, TileClass, VerifySummary};
pub use json::{parse as parse_json, Json, ParseError};
pub use metrics::{
    count_arena_bytes_grown, count_arena_lease, count_dispatch, count_execute, count_fallback,
    count_packed_bytes_a, count_packed_bytes_b, count_plan_build, count_plan_cache,
    count_plan_commands, count_pmu, count_superblock, count_tune, dispatch_count, is_enabled,
    pmu_count, reset, snapshot, tune_count, CacheEvent, DispatchCount, MetricsSnapshot, Op,
    PhaseSnapshot, PmuEvent, ThreadPhaseSnapshot, TuneEvent,
};
pub use timer::{phase, Phase, PhaseGuard};

#[cfg(test)]
mod tests {
    use super::*;

    /// All counter-dependent assertions live in one test: the registry is
    /// global and the test harness runs tests concurrently.
    #[test]
    fn counters_roundtrip_or_noop() {
        reset();
        count_plan_build(Op::Gemm, 12);
        count_plan_build(Op::Gemm, 3);
        count_plan_build(Op::Trsm, 5);
        count_plan_commands(7);
        count_execute(Op::Gemm);
        count_dispatch(Op::Gemm, 4, 4, true);
        count_dispatch(Op::Gemm, 4, 4, true);
        count_dispatch(Op::Gemm, 2, 4, false);
        count_fallback();
        count_packed_bytes_a(1024);
        count_packed_bytes_b(2048);
        count_plan_cache(CacheEvent::Hit);
        count_plan_cache(CacheEvent::Hit);
        count_plan_cache(CacheEvent::Miss);
        count_plan_cache(CacheEvent::Eviction);
        count_plan_cache(CacheEvent::Bypass);
        count_arena_lease(0);
        count_arena_lease(4096);
        count_arena_bytes_grown(512);
        count_superblock(Op::Gemm, 6);
        count_superblock(Op::Trsm, 1);
        count_tune(TuneEvent::Sweep);
        count_tune(TuneEvent::Apply);
        count_tune(TuneEvent::Apply);
        count_tune(TuneEvent::Miss);
        count_tune(TuneEvent::DbCorrupt);
        count_tune(TuneEvent::Persist);
        count_tune(TuneEvent::Retune);
        count_pmu(PmuEvent::Opened);
        count_pmu(PmuEvent::Permission);
        {
            let _guard = phase(Phase::Unpack);
            std::hint::black_box(0u64);
        }
        let s = snapshot();
        if is_enabled() {
            assert!(s.enabled);
            assert_eq!(s.plan_builds, [2, 1, 0]);
            assert_eq!(s.plan_commands, 7);
            assert_eq!(s.executes, [1, 0, 0]);
            assert_eq!(dispatch_count(Op::Gemm, 4, 4), 2);
            assert_eq!(dispatch_count(Op::Gemm, 2, 4), 1);
            assert_eq!(s.main_tile_hits, 2);
            assert_eq!(s.edge_tile_hits, 1);
            assert_eq!(s.fallback_hits, 1);
            assert_eq!(s.packed_bytes_a, 1024);
            assert_eq!(s.packed_bytes_b, 2048);
            assert!((s.edge_rate() - 1.0 / 3.0).abs() < 1e-12);
            // batch counts 12, 3, 5 land in log2 buckets 4, 2, 3
            assert_eq!(s.batch_counts[4], 1);
            assert_eq!(s.batch_counts[2], 1);
            assert_eq!(s.batch_counts[3], 1);
            assert_eq!(s.plan_cache, [2, 1, 1, 1]);
            assert_eq!(s.arena_leases, 2);
            assert_eq!(s.arena_reuses, 1);
            assert_eq!(s.arena_bytes_reused, 4096);
            assert_eq!(s.arena_bytes_grown, 512);
            assert_eq!(s.superblock_tasks, [1, 1, 0]);
            // superblock sizes 6 and 1 land in log2 buckets 3 and 1
            assert_eq!(s.superblock_packs[3], 1);
            assert_eq!(s.superblock_packs[1], 1);
            assert_eq!(s.tune, [1, 2, 1, 1, 1, 1]);
            assert_eq!(tune_count(TuneEvent::Apply), 2);
            assert_eq!(s.pmu, [1, 0, 1, 0, 0]);
            assert_eq!(pmu_count(PmuEvent::Permission), 1);
            let unpack = &s.phases[Phase::Unpack as usize];
            assert_eq!(unpack.phase, Phase::Unpack);
            assert_eq!(unpack.calls, 1);
            assert_eq!(unpack.hist.iter().sum::<u64>(), 1);
            // per-thread attribution: the span landed on exactly one thread,
            // and the phase totals are the sum of the thread breakdowns.
            assert!(!s.threads.is_empty());
            let thread_calls: u64 = s
                .threads
                .iter()
                .map(|t| t.calls[Phase::Unpack as usize])
                .sum();
            assert_eq!(thread_calls, unpack.calls);
            let thread_ns: u64 = s
                .threads
                .iter()
                .map(|t| t.total_ns[Phase::Unpack as usize])
                .sum();
            assert_eq!(thread_ns, unpack.total_ns);
            reset();
            let z = snapshot();
            assert_eq!(z.plan_builds, [0, 0, 0]);
            assert!(z.dispatch.is_empty());
        } else {
            // Feature off: every probe is a no-op and snapshots are zeroed.
            assert!(!s.enabled);
            assert_eq!(s.plan_builds, [0, 0, 0]);
            assert_eq!(s.plan_commands, 0);
            assert_eq!(dispatch_count(Op::Gemm, 4, 4), 0);
            assert_eq!(s.tune, [0, 0, 0, 0, 0, 0]);
            assert_eq!(tune_count(TuneEvent::Sweep), 0);
            assert!(s.dispatch.is_empty());
            assert!(s.phases.is_empty());
            assert_eq!(s.edge_rate(), 0.0);
        }
    }

    #[test]
    fn snapshot_serializes_to_valid_shaped_json() {
        let s = snapshot().to_json().to_pretty();
        assert!(s.starts_with('{') && s.ends_with('}'));
        for key in [
            "\"enabled\"",
            "\"plan_builds\"",
            "\"kernel_dispatches\"",
            "\"packed_bytes\"",
            "\"plan_cache\"",
            "\"arena\"",
            "\"superblocks\"",
            "\"tune\"",
            "\"phases\"",
        ] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
