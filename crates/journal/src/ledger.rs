//! The enabled half of the journal: per-thread event buffers, the id
//! allocator, the ambient cause-scope stack, and the segment writer.
//!
//! Publishing appends to a plain thread-local `Vec` — no lock, no atomic
//! RMW beyond two monotonic counters — and a full buffer *seals*: the
//! batch drains under one mutex into the in-memory ledger and the live
//! on-disk segment, which is republished whole via temp file + rename so
//! readers only ever observe complete segment files. A thread's buffer
//! also seals when the thread exits (the thread-local's `Drop`), so a
//! sealed record can only be lost to an I/O error, never to scheduling.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use iatf_obs::Json;

use crate::event::{Event, EventKind};

/// Events buffered per thread before the buffer seals to the writer.
const FLUSH_AT: usize = 16;
/// The live segment rotates once its serialized size passes this.
const SEGMENT_BYTES: usize = 256 * 1024;
/// Bound on the in-memory ledger [`recent`] serves from.
const MEM_CAP: usize = 16 * 1024;

// Monotonic telemetry counters and id allocators. Nothing is published
// *through* them — each value is independently meaningful — so every
// access below is Relaxed.
static PUBLISHED: AtomicU64 = AtomicU64::new(0);
static SEALED: AtomicU64 = AtomicU64::new(0);
static REPLAY_DROPPED: AtomicU64 = AtomicU64::new(0);
static ID_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Process-wide id base: wall-clock milliseconds at first use, truncated
/// to 33 bits (a ~99-day rolling window) and shifted past a 20-bit
/// sequence field. Ids from one process are `base + seq` — dense and
/// monotone — while ids from sessions started in different milliseconds
/// land in disjoint ranges, so merged journals keep unique ids without
/// coordination. The layout tops out below 2^53, so ids survive any
/// f64-based JSON tooling (including our own parser) exactly.
fn id_base() -> u64 {
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        let millis = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        (millis & ((1 << 33) - 1)) << 20
    })
}

fn now_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64)
}

fn next_id() -> u64 {
    // ordering: relaxed — a monotonic id allocator; uniqueness comes from
    // the RMW itself, no other memory is synchronized through it.
    id_base() + ID_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Events ever published in this process.
pub(crate) fn events_published() -> u64 {
    // ordering: relaxed — monotonic counter read for exposition only.
    PUBLISHED.load(Ordering::Relaxed)
}

/// Events sealed (drained from a thread buffer into the writer).
pub(crate) fn events_sealed() -> u64 {
    // ordering: relaxed — monotonic counter read for exposition only.
    SEALED.load(Ordering::Relaxed)
}

/// Bumps the replay drop counter (corrupt records skipped by replay).
pub(crate) fn note_replay_dropped(n: u64) {
    // ordering: relaxed — monotonic counter, no ordering edge needed.
    REPLAY_DROPPED.fetch_add(n, Ordering::Relaxed);
}

/// Corrupt records dropped by replays in this process.
pub(crate) fn replay_dropped() -> u64 {
    // ordering: relaxed — monotonic counter read for exposition only.
    REPLAY_DROPPED.load(Ordering::Relaxed)
}

/// Per-thread state: a small event buffer and the ambient cause stack.
struct ThreadBuf {
    tid: u64,
    events: Vec<Event>,
    causes: Vec<u64>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Thread exit seals whatever is buffered so nothing is stranded.
        seal(std::mem::take(&mut self.events));
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        // ordering: relaxed — tid allocator is a monotonic counter; the
        // RMW alone guarantees distinct ids.
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
        causes: Vec::new(),
    });
}

/// Appends one event to the calling thread's buffer and returns its id.
/// `cause == 0` inherits the ambient cause scope (if any).
pub(crate) fn publish(kind: EventKind, key: &str, cause: u64, data: Json) -> u64 {
    let id = next_id();
    // ordering: relaxed — monotonic publish counter.
    PUBLISHED.fetch_add(1, Ordering::Relaxed);
    // `try_with` fails only during thread teardown, after the buffer's
    // own Drop already ran; such late events are dropped by design.
    let _ = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        let cause = if cause != 0 {
            cause
        } else {
            b.causes.last().copied().unwrap_or(0)
        };
        let tid = b.tid;
        b.events.push(Event {
            id,
            cause,
            ts_micros: now_micros(),
            tid,
            kind,
            key: key.to_string(),
            data,
        });
        if b.events.len() >= FLUSH_AT {
            let batch = std::mem::take(&mut b.events);
            seal(batch);
        }
    });
    id
}

/// Pushes an ambient cause for the calling thread ([`crate::cause_scope`]).
pub(crate) fn push_cause(id: u64) {
    let _ = BUF.try_with(|b| b.borrow_mut().causes.push(id));
}

/// Pops the calling thread's ambient cause.
pub(crate) fn pop_cause() {
    let _ = BUF.try_with(|b| {
        b.borrow_mut().causes.pop();
    });
}

/// Seals the calling thread's buffer: everything published so far on this
/// thread is durable (in the in-memory ledger and, if a journal directory
/// is configured, on disk) when this returns.
pub(crate) fn sync() {
    let batch = BUF
        .try_with(|b| std::mem::take(&mut b.borrow_mut().events))
        .unwrap_or_default();
    seal(batch);
}

/// The bounded in-memory ledger, oldest first, including the calling
/// thread's unsealed buffer.
pub(crate) fn recent() -> Vec<Event> {
    sync();
    match writer().lock() {
        Ok(w) => w.mem.iter().cloned().collect(),
        Err(_) => Vec::new(),
    }
}

/// Test/CLI hook: overrides the segment directory (`None` disables
/// persistence). Resets the live segment; the in-memory ledger survives.
pub(crate) fn set_dir(dir: Option<PathBuf>) {
    if let Ok(mut w) = writer().lock() {
        w.reset_dir(dir);
    }
}

/// The resolved segment directory, if persistence is active.
pub(crate) fn dir() -> Option<PathBuf> {
    let mut w = writer().lock().ok()?;
    w.ensure_dir();
    w.dir.clone()
}

/// Test hook: drops the in-memory ledger and any buffered events on the
/// calling thread. Ids stay monotone; the segment directory is untouched.
pub(crate) fn reset_memory() {
    let _ = BUF.try_with(|b| b.borrow_mut().events.clear());
    if let Ok(mut w) = writer().lock() {
        w.mem.clear();
    }
}

/// The single writer behind all threads' sealed batches.
struct Writer {
    dir: Option<PathBuf>,
    dir_resolved: bool,
    /// Number of the live segment file.
    seg_seq: u64,
    /// Serialized content of the live segment (rewritten whole on seal).
    seg_text: String,
    mem: VecDeque<Event>,
}

fn writer() -> &'static Mutex<Writer> {
    static W: OnceLock<Mutex<Writer>> = OnceLock::new();
    W.get_or_init(|| {
        Mutex::new(Writer {
            dir: None,
            dir_resolved: false,
            seg_seq: 0,
            seg_text: String::new(),
            mem: VecDeque::new(),
        })
    })
}

impl Writer {
    /// Lazily resolves `$IATF_JOURNAL_DIR` (tri-state, like the tuning
    /// db's path) and picks a fresh segment number past any existing ones
    /// so this process never rewrites another session's segments.
    fn ensure_dir(&mut self) {
        if self.dir_resolved {
            return;
        }
        self.dir_resolved = true;
        let dir = iatf_obs::env::env_path("IATF_JOURNAL_DIR", &[".cache", "iatf", "journal"]);
        self.reset_dir(dir);
        self.dir_resolved = true;
    }

    fn reset_dir(&mut self, dir: Option<PathBuf>) {
        self.seg_text.clear();
        self.seg_seq = 0;
        self.dir = None;
        self.dir_resolved = true;
        let Some(dir) = dir else { return };
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        self.seg_seq = next_free_segment(&dir);
        self.dir = Some(dir);
    }

    /// Republishes the live segment whole: write a temp file, then rename
    /// over the segment name. Readers never observe a partial file.
    fn publish_segment(&self) {
        let Some(dir) = &self.dir else { return };
        let name = segment_name(self.seg_seq);
        let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, self.seg_text.as_bytes()).is_ok() {
            let _ = std::fs::rename(&tmp, dir.join(name));
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

use crate::replay::{parse_segment_name, segment_name};

fn next_free_segment(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| parse_segment_name(&e.ok()?.file_name().to_string_lossy()))
        .map(|seq| seq + 1)
        .max()
        .unwrap_or(0)
}

/// Drains one sealed batch into the ledger and the live segment.
fn seal(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    let Ok(mut w) = writer().lock() else { return };
    w.ensure_dir();
    // ordering: relaxed — monotonic seal counter.
    SEALED.fetch_add(events.len() as u64, Ordering::Relaxed);
    for ev in events {
        let line = ev.to_json().to_compact();
        w.seg_text.push_str(&line);
        w.seg_text.push('\n');
        w.mem.push_back(ev);
        if w.mem.len() > MEM_CAP {
            w.mem.pop_front();
        }
    }
    w.publish_segment();
    if w.seg_text.len() >= SEGMENT_BYTES {
        w.seg_seq += 1;
        w.seg_text.clear();
    }
}
