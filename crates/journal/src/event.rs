//! The ledger's record type: a causally-linked structured event.

use iatf_obs::Json;

/// What kind of decision an event records. Each decision-making subsystem
/// owns a small set of kinds; the `cause` field on [`Event`] links them
/// into chains (a drift event points at the envelope seed that armed the
/// detector; the retune it triggers points back at the drift event).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A plan was built on a shared-cache miss (tiles/pack/width digest).
    PlanBuild,
    /// The freshly built plan was inserted into the shared plan cache.
    CacheInsert,
    /// An LRU victim was evicted from a shared plan-cache shard.
    CacheEvict,
    /// The plan cache was cleared and its epoch bumped.
    CacheGenerationBump,
    /// An autotune sweep began for a shape class.
    SweepStart,
    /// One candidate's measured time inside a sweep.
    SweepCandidate,
    /// The sweep's winner, with noise, rep counts, and host fingerprint.
    SweepWinner,
    /// A tuned entry was recorded into the tuning db.
    DbRecord,
    /// A tuned entry was evicted from the tuning db.
    DbEvict,
    /// A performance envelope was armed for a shape class.
    EnvelopeSeed,
    /// A class's envelope was re-seeded or sent back to calibration.
    EnvelopeRecalibrate,
    /// The drift detector tripped for a shape class.
    Drift,
    /// A drift-triggered retune completed (successfully or not).
    Retune,
}

impl EventKind {
    /// Every kind, in declaration order (drives CLI filters and tests).
    pub const ALL: [EventKind; 13] = [
        EventKind::PlanBuild,
        EventKind::CacheInsert,
        EventKind::CacheEvict,
        EventKind::CacheGenerationBump,
        EventKind::SweepStart,
        EventKind::SweepCandidate,
        EventKind::SweepWinner,
        EventKind::DbRecord,
        EventKind::DbEvict,
        EventKind::EnvelopeSeed,
        EventKind::EnvelopeRecalibrate,
        EventKind::Drift,
        EventKind::Retune,
    ];

    /// Stable snake_case name used in the on-disk format and CLI filters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PlanBuild => "plan_build",
            EventKind::CacheInsert => "cache_insert",
            EventKind::CacheEvict => "cache_evict",
            EventKind::CacheGenerationBump => "cache_generation_bump",
            EventKind::SweepStart => "sweep_start",
            EventKind::SweepCandidate => "sweep_candidate",
            EventKind::SweepWinner => "sweep_winner",
            EventKind::DbRecord => "db_record",
            EventKind::DbEvict => "db_evict",
            EventKind::EnvelopeSeed => "envelope_seed",
            EventKind::EnvelopeRecalibrate => "envelope_recalibrate",
            EventKind::Drift => "drift",
            EventKind::Retune => "retune",
        }
    }

    /// Inverse of [`name`](Self::name); `None` for unknown names, which
    /// replay treats as a corrupt record.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One ledger record.
///
/// `id` is unique and monotone within a process (see the id scheme in the
/// crate docs); `cause` is the id of the event that led to this one, or 0
/// for a root event. `key` is the shape class the decision concerns — the
/// autotuner's stable `TuneKey` encoding — or `""` for process-wide
/// events like a cache generation bump.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Unique, process-monotone event id (never 0).
    pub id: u64,
    /// Id of the causing event; 0 for roots.
    pub cause: u64,
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub ts_micros: u64,
    /// Small per-process ordinal of the publishing thread.
    pub tid: u64,
    /// The decision recorded.
    pub kind: EventKind,
    /// Shape-class identity (`TuneKey::encode()`), or empty.
    pub key: String,
    /// Kind-specific payload.
    pub data: Json,
}

impl Event {
    /// On-disk form: one JSON object per segment line.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("id", self.id)
            .set("cause", self.cause)
            .set("ts_us", self.ts_micros)
            .set("tid", self.tid)
            .set("kind", self.kind.name())
            .set("key", self.key.as_str())
            .set("data", self.data.clone())
    }

    /// Strict inverse of [`to_json`]: any missing or mistyped field makes
    /// the record corrupt (`None`), and replay truncates the segment there.
    pub fn from_json(j: &Json) -> Option<Event> {
        let id = j.get("id")?.as_u64()?;
        if id == 0 {
            return None;
        }
        Some(Event {
            id,
            cause: j.get("cause")?.as_u64()?,
            ts_micros: j.get("ts_us")?.as_u64()?,
            tid: j.get("tid")?.as_u64()?,
            kind: EventKind::from_name(j.get("kind")?.as_str()?)?,
            key: j.get("key")?.as_str()?.to_string(),
            data: j.get("data")?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("nonsense"), None);
    }

    #[test]
    fn event_roundtrips_through_json() {
        let ev = Event {
            id: 77,
            cause: 3,
            ts_micros: 1_700_000_000_000_000,
            tid: 2,
            kind: EventKind::SweepWinner,
            key: "0:1:8:8:8:0:0:512:1".to_string(),
            data: Json::object().set("noise", 0.01).set("winner", 2u64),
        };
        let text = ev.to_json().to_compact();
        let back = Event::from_json(&iatf_obs::parse_json(&text).unwrap()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn malformed_events_are_rejected() {
        for bad in [
            r#"{"id":0,"cause":0,"ts_us":1,"tid":1,"kind":"drift","key":"","data":{}}"#,
            r#"{"cause":0,"ts_us":1,"tid":1,"kind":"drift","key":"","data":{}}"#,
            r#"{"id":1,"cause":0,"ts_us":1,"tid":1,"kind":"bogus","key":"","data":{}}"#,
            r#"{"id":1,"cause":0,"ts_us":1,"tid":1,"kind":"drift","key":7,"data":{}}"#,
            r#"{"id":1,"cause":0,"ts_us":1,"tid":1,"kind":"drift","key":""}"#,
        ] {
            let j = iatf_obs::parse_json(bad).unwrap();
            assert_eq!(Event::from_json(&j), None, "accepted {bad}");
        }
    }
}
