//! Corruption-tolerant segment replay and causal-chain reconstruction.
//!
//! Replay never fails: an unreadable directory yields an empty report, a
//! corrupt line truncates its segment at the first bad record (the tail
//! cannot be trusted once framing is lost) and the dropped lines are
//! counted, so a crash mid-write or a bit-flipped byte degrades the
//! ledger instead of breaking every consumer of it.

use std::path::Path;

use crate::event::Event;

/// The result of replaying a journal directory.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Every decodable event, in segment order then line order (which is
    /// publish order per thread, interleaved at seal granularity).
    pub events: Vec<Event>,
    /// Segment files found.
    pub segments: usize,
    /// Segments cut short by a corrupt or unreadable record.
    pub truncated_segments: usize,
    /// Records lost to corruption (the bad record and everything after it
    /// in its segment).
    pub dropped_records: u64,
}

/// Replays the configured journal directory (`$IATF_JOURNAL_DIR`, same
/// tri-state resolution the writer uses). `None` when persistence is
/// disabled or the journal feature is off without an explicit directory.
pub fn replay() -> Option<ReplayReport> {
    let dir = crate::journal_dir()?;
    Some(replay_dir(&dir))
}

/// Replays one directory of `segment-*.jsonl` files, oldest first.
pub fn replay_dir(dir: &Path) -> ReplayReport {
    let mut report = ReplayReport::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return report;
    };
    let mut segments: Vec<(u64, std::path::PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let seq = parse_segment_name(&e.file_name().to_string_lossy())?;
            Some((seq, e.path()))
        })
        .collect();
    segments.sort_by_key(|(seq, _)| *seq);
    for (_, path) in segments {
        report.segments += 1;
        let Ok(text) = std::fs::read_to_string(&path) else {
            report.truncated_segments += 1;
            continue;
        };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        for line in lines.by_ref() {
            let parsed = iatf_obs::parse_json(line).ok();
            let event = parsed.as_ref().and_then(Event::from_json);
            match event {
                Some(ev) => report.events.push(ev),
                None => {
                    // First bad record: drop it and the untrusted tail.
                    report.truncated_segments += 1;
                    report.dropped_records += 1 + lines.count() as u64;
                    break;
                }
            }
        }
    }
    crate::note_replay_dropped(report.dropped_records);
    report
}

/// Reconstructs the causal chain through `id`: the ancestor path first
/// (root cause → … → the event itself), then every transitive descendant
/// in ledger order. Returns an empty vec if `id` is not in `events`.
pub fn follow(events: &[Event], id: u64) -> Vec<Event> {
    use std::collections::HashSet;
    if !events.iter().any(|e| e.id == id) {
        return Vec::new();
    }
    // Ancestors: walk `cause` links upward; a visited set guards against
    // malformed cycles in hand-edited journals.
    let mut chain = Vec::new();
    let mut visited = HashSet::new();
    let mut cursor = id;
    while cursor != 0 && visited.insert(cursor) {
        let Some(ev) = events.iter().find(|e| e.id == cursor) else {
            break;
        };
        chain.push(ev.clone());
        cursor = ev.cause;
    }
    chain.reverse();
    // Descendants of `id` itself (not of its ancestors' other branches):
    // repeated sweeps over the ledger until closure, so a child that was
    // sealed before its parent is still found. `seen` keeps ancestors
    // from being re-added when a malformed journal contains cycles.
    let mut seen: HashSet<u64> = chain.iter().map(|e| e.id).collect();
    let mut reachable: HashSet<u64> = HashSet::from([id]);
    let mut grew = true;
    while grew {
        grew = false;
        for ev in events {
            if !seen.contains(&ev.id) && reachable.contains(&ev.cause) {
                seen.insert(ev.id);
                reachable.insert(ev.id);
                chain.push(ev.clone());
                grew = true;
            }
        }
    }
    chain
}

/// Canonical segment file name for a sequence number.
pub fn segment_name(seq: u64) -> String {
    format!("segment-{seq:06}.jsonl")
}

/// Parses a segment file name back to its sequence number.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("segment-")?.strip_suffix(".jsonl")?;
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use iatf_obs::Json;

    fn ev(id: u64, cause: u64, kind: EventKind) -> Event {
        Event {
            id,
            cause,
            ts_micros: id,
            tid: 1,
            kind,
            key: "k".to_string(),
            data: Json::object(),
        }
    }

    #[test]
    fn follow_reconstructs_ancestors_and_descendants() {
        // sweep(1) -> winner(2) -> seed(3) -> drift(4) -> retune(5)
        //                                              -> sweep(6) -> winner(7)
        let events = vec![
            ev(1, 0, EventKind::SweepStart),
            ev(2, 1, EventKind::SweepWinner),
            ev(3, 2, EventKind::EnvelopeSeed),
            ev(4, 3, EventKind::Drift),
            ev(5, 4, EventKind::Retune),
            ev(6, 4, EventKind::SweepStart),
            ev(7, 6, EventKind::SweepWinner),
            ev(9, 0, EventKind::CacheGenerationBump), // unrelated root
        ];
        let chain = follow(&events, 4);
        let ids: Vec<u64> = chain.iter().map(|e| e.id).collect();
        assert_eq!(&ids[..4], &[1, 2, 3, 4], "ancestor path is root-first");
        for want in [5, 6, 7] {
            assert!(ids.contains(&want), "descendant {want} missing");
        }
        assert!(!ids.contains(&9));
        // Following the root reaches the whole tree.
        assert_eq!(follow(&events, 1).len(), 7);
        // Unknown id yields nothing.
        assert!(follow(&events, 777).is_empty());
    }

    #[test]
    fn follow_survives_cause_cycles() {
        let events = vec![ev(1, 2, EventKind::Drift), ev(2, 1, EventKind::Retune)];
        let chain = follow(&events, 1);
        assert_eq!(chain.len(), 2);
    }
}
