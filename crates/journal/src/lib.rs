//! iatf-journal: the unified provenance journal — an append-only causal
//! event ledger linking every tuning decision across the stack.
//!
//! The runtime makes decisions in several places: the planner chooses
//! tiles and pack strategies, the plan cache inserts and evicts, the
//! autotuner sweeps candidates and records winners, the watch layer arms
//! envelopes, detects drift, and triggers retunes. Each subsystem already
//! *counts* (iatf-obs) and *times* (iatf-trace) itself, but none of that
//! answers "why is shape X served by this plan today?". This crate does:
//! every decision publishes a structured [`Event`] carrying a `cause` id,
//! so a drift event points at the envelope seed that armed its detector,
//! and the retune it triggers — the db eviction, the fresh sweep, the new
//! winner — all point back at the drift event. `reproduce journal
//! --follow <id>` walks the chain end-to-end.
//!
//! **Id scheme.** Ids are `base + seq` where `base` is the process's
//! first-use wall clock in milliseconds, truncated to 33 bits and shifted
//! left 20: dense and monotone within a process, disjoint across sessions
//! started in different milliseconds (within a ~99-day window), never 0
//! (0 means "no cause" / "journal disabled"), and always below 2^53 so
//! f64-based JSON tooling round-trips them exactly.
//!
//! **Durability.** Publishing appends to a per-thread buffer (no lock).
//! A full buffer — or thread exit, or [`sync`] — *seals* the batch into a
//! bounded in-memory ledger and the live on-disk segment under
//! `$IATF_JOURNAL_DIR` (unset ⇒ `~/.cache/iatf/journal/`, set-empty ⇒
//! in-memory only). The live segment is republished whole via temp
//! file plus rename on every seal and rotates at a size cap, so
//! readers only ever observe complete segment files; [`replay`]
//! tolerates corruption by truncating a segment at its first bad
//! record and counting what it dropped.
//!
//! Everything stateful is behind the `enabled` feature (workspace:
//! `journal`). Disabled, [`publish`] is a constant 0 and probe sites
//! gate their payload construction on the const [`is_enabled`], so the
//! instrumented crates compile exactly as if this crate did not exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod replay;

#[cfg(feature = "enabled")]
mod ledger;

pub use event::{Event, EventKind};
pub use replay::{follow, replay, replay_dir, ReplayReport};

use iatf_obs::Json;
use std::path::PathBuf;

/// Whether the ledger is compiled in.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Publishes one event and returns its id (0 when disabled).
///
/// `cause == 0` inherits the innermost ambient [`cause_scope`] on the
/// calling thread, if any. Call sites that build a non-trivial `data`
/// payload should gate on [`is_enabled`] so disabled builds skip the
/// construction entirely.
#[inline]
pub fn publish(kind: EventKind, key: &str, cause: u64, data: Json) -> u64 {
    #[cfg(feature = "enabled")]
    {
        ledger::publish(kind, key, cause, data)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (kind, key, cause, data);
        0
    }
}

/// An ambient-cause guard: while alive, events published on this thread
/// without an explicit cause inherit `cause`. Zero-sized no-op when the
/// feature is off or `cause` is 0.
#[must_use = "the scope ends when the guard drops; binding it to _ discards it"]
pub struct CauseScope {
    #[cfg(feature = "enabled")]
    active: bool,
}

#[cfg(feature = "enabled")]
impl Drop for CauseScope {
    fn drop(&mut self) {
        if self.active {
            ledger::pop_cause();
        }
    }
}

/// Opens an ambient cause scope (see [`CauseScope`]). Lets a caller
/// attribute everything a callee publishes — a retune's db eviction,
/// re-sweep, and envelope re-arm — to one causing event without
/// threading ids through every signature.
pub fn cause_scope(cause: u64) -> CauseScope {
    #[cfg(feature = "enabled")]
    {
        let active = cause != 0;
        if active {
            ledger::push_cause(cause);
        }
        CauseScope { active }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = cause;
        CauseScope {}
    }
}

/// Seals the calling thread's buffer: everything it published is in the
/// in-memory ledger (and on disk, if persistence is active) on return.
pub fn sync() {
    #[cfg(feature = "enabled")]
    ledger::sync();
}

/// The bounded in-memory ledger, oldest first (empty when disabled).
/// Seals the calling thread's buffer first.
pub fn recent() -> Vec<Event> {
    #[cfg(feature = "enabled")]
    {
        ledger::recent()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Events ever published in this process.
pub fn events_published() -> u64 {
    #[cfg(feature = "enabled")]
    {
        ledger::events_published()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Events sealed out of thread buffers (durable).
pub fn events_sealed() -> u64 {
    #[cfg(feature = "enabled")]
    {
        ledger::events_sealed()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Corrupt records dropped by replays in this process.
pub fn replay_dropped() -> u64 {
    #[cfg(feature = "enabled")]
    {
        ledger::replay_dropped()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

pub(crate) fn note_replay_dropped(n: u64) {
    #[cfg(feature = "enabled")]
    ledger::note_replay_dropped(n);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = n;
    }
}

/// The directory segments are written to / replayed from: the writer's
/// resolved directory when the feature is on, else the plain
/// `$IATF_JOURNAL_DIR` tri-state resolution (so tooling built without
/// the feature can still read a journal another process wrote).
pub fn journal_dir() -> Option<PathBuf> {
    #[cfg(feature = "enabled")]
    {
        ledger::dir()
    }
    #[cfg(not(feature = "enabled"))]
    {
        iatf_obs::env::env_path("IATF_JOURNAL_DIR", &[".cache", "iatf", "journal"])
    }
}

/// Test/CLI hook: overrides the segment directory (`None` disables
/// persistence). No-op when disabled.
pub fn set_dir(dir: Option<PathBuf>) {
    #[cfg(feature = "enabled")]
    ledger::set_dir(dir);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = dir;
    }
}

/// Test hook: drops the in-memory ledger and the calling thread's
/// buffered events. Ids stay monotone; segment files are untouched.
pub fn reset_memory() {
    #[cfg(feature = "enabled")]
    ledger::reset_memory();
}

/// A stable 64-bit FNV-1a fingerprint of the measurement host's µarch
/// row and vector width, stamped into sweep winners and db provenance so
/// a pooled or copied tuning db shows where each entry was measured.
/// Always available (pure function of its inputs).
pub fn host_fingerprint(uarch: &str, width: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in uarch.bytes().chain([0u8]).chain(width.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A stable 64-bit FNV-1a digest of an arbitrary string — used to stamp
/// a compact fingerprint of a rendered document (e.g. a `PlanExplain`)
/// into event payloads without carrying the whole text. Always available
/// (pure function of its input).
pub fn digest64(text: &str) -> u64 {
    host_fingerprint(text, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share a process: route segments away from any real
    /// `$IATF_JOURNAL_DIR` / `~/.cache` once, before the writer resolves.
    fn isolate() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            std::env::set_var("IATF_JOURNAL_DIR", "");
        });
    }

    #[test]
    fn fingerprint_is_stable_and_separates_inputs() {
        let a = host_fingerprint("x86_64-avx2", "256");
        assert_eq!(a, host_fingerprint("x86_64-avx2", "256"));
        assert_ne!(a, host_fingerprint("x86_64-avx2", "512"));
        assert_ne!(a, host_fingerprint("x86_64-sse2", "256"));
        // The separator keeps ("ab", "c") and ("a", "bc") distinct.
        assert_ne!(host_fingerprint("ab", "c"), host_fingerprint("a", "bc"));
    }

    #[test]
    fn disabled_probes_are_inert() {
        isolate();
        if is_enabled() {
            return;
        }
        let id = publish(EventKind::Drift, "0:1:2:2:2:0:0:8:1", 0, Json::object());
        assert_eq!(id, 0);
        let _scope = cause_scope(7);
        assert_eq!(publish(EventKind::Retune, "", 0, Json::object()), 0);
        sync();
        assert!(recent().is_empty());
        assert_eq!(events_published(), 0);
        assert_eq!(std::mem::size_of::<CauseScope>(), 0);
        assert!(!std::mem::needs_drop::<CauseScope>());
    }

    #[test]
    fn publish_links_events_and_scopes_nest() {
        isolate();
        if !is_enabled() {
            return;
        }
        let root = publish(EventKind::SweepStart, "k", 0, Json::object());
        assert_ne!(root, 0);
        let explicit = publish(EventKind::SweepWinner, "k", root, Json::object());
        let (inner, outer_after) = {
            let _outer = cause_scope(root);
            let inner = publish(EventKind::DbRecord, "k", 0, Json::object());
            let nested = {
                let _inner = cause_scope(explicit);
                publish(EventKind::EnvelopeSeed, "k", 0, Json::object())
            };
            (nested, inner)
        };
        let after = publish(EventKind::Drift, "k", 0, Json::object());
        let events = recent();
        let find = |id: u64| events.iter().find(|e| e.id == id).unwrap().clone();
        assert_eq!(find(explicit).cause, root);
        assert_eq!(find(outer_after).cause, root, "ambient scope not applied");
        assert_eq!(find(inner).cause, explicit, "nested scope not innermost");
        assert_eq!(find(after).cause, 0, "scope leaked past its guard");
        assert!(events_published() >= 5);
    }

    #[test]
    fn ids_are_monotone_and_nonzero() {
        isolate();
        if !is_enabled() {
            return;
        }
        let a = publish(EventKind::PlanBuild, "", 0, Json::object());
        let b = publish(EventKind::PlanBuild, "", 0, Json::object());
        assert!(a != 0 && b > a);
    }
}
