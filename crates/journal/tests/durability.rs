//! Durability properties of the journal: corruption-tolerant replay,
//! concurrent append ordering, and rotation.
//!
//! Replay-only tests run in every build; tests that drive the global
//! ledger need the `enabled` feature and serialize on a mutex because
//! the segment directory is process-wide state.

use std::path::PathBuf;
use std::sync::Mutex;

use iatf_journal::{follow, publish, replay_dir, EventKind};
use iatf_obs::Json;

/// Serializes tests that touch the global ledger / segment directory.
static LEDGER_LOCK: Mutex<()> = Mutex::new(());

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iatf-journal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn line(id: u64, cause: u64, kind: &str) -> String {
    format!(
        r#"{{"id":{id},"cause":{cause},"ts_us":{id},"tid":1,"kind":"{kind}","key":"0:1:4:4:4:0:0:8:1","data":{{}}}}"#
    )
}

#[test]
fn replay_truncates_at_first_bad_record_and_counts_drops() {
    let dir = scratch_dir("corrupt");
    // Segment 0: two good records, then garbage, then a good record that
    // must NOT survive (the tail is untrusted once framing is lost).
    let seg0 = [
        line(1, 0, "sweep_start"),
        line(2, 1, "sweep_winner"),
        "{\"id\":3,\"cause\":2,\"ts_us\"".to_string(), // torn mid-write
        line(4, 2, "db_record"),
    ]
    .join("\n");
    std::fs::write(dir.join("segment-000000.jsonl"), seg0).unwrap();
    // Segment 1: intact, must replay fully.
    std::fs::write(
        dir.join("segment-000001.jsonl"),
        format!("{}\n{}\n", line(10, 2, "envelope_seed"), line(11, 10, "drift")),
    )
    .unwrap();
    // Not a segment: ignored entirely.
    std::fs::write(dir.join("notes.txt"), "not a segment").unwrap();

    let before = iatf_journal::replay_dropped();
    let report = replay_dir(&dir);
    assert_eq!(report.segments, 2);
    assert_eq!(report.truncated_segments, 1);
    assert_eq!(report.dropped_records, 2, "bad record + its tail");
    let ids: Vec<u64> = report.events.iter().map(|e| e.id).collect();
    assert_eq!(ids, vec![1, 2, 10, 11]);
    if iatf_journal::is_enabled() {
        // Other replays may interleave (tests share the process-wide
        // counter), so assert at-least rather than exactly.
        assert!(iatf_journal::replay_dropped() - before >= 2);
    }
    // The surviving chain is still walkable across the truncation.
    let chain = follow(&report.events, 11);
    let chain_ids: Vec<u64> = chain.iter().map(|e| e.id).collect();
    assert_eq!(chain_ids, vec![1, 2, 10, 11]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_of_garbage_only_segment_is_empty_not_fatal() {
    let dir = scratch_dir("garbage");
    std::fs::write(dir.join("segment-000000.jsonl"), "\u{0}\u{0}binary trash\n[1,2,3]\n").unwrap();
    let report = replay_dir(&dir);
    assert!(report.events.is_empty());
    assert_eq!(report.truncated_segments, 1);
    assert_eq!(report.dropped_records, 2);
    // A missing directory degrades the same way.
    let gone = dir.join("never-created");
    let report = replay_dir(&gone);
    assert!(report.events.is_empty() && report.segments == 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_append_preserves_per_thread_order_and_loses_nothing() {
    if !iatf_journal::is_enabled() {
        return;
    }
    let _guard = LEDGER_LOCK.lock().unwrap();
    let dir = scratch_dir("concurrent");
    iatf_journal::set_dir(Some(dir.clone()));
    iatf_journal::reset_memory();

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let key = format!("0:1:{t}:4:4:0:0:8:1");
                let mut prev = 0;
                for i in 0..PER_THREAD {
                    let id = publish(
                        EventKind::SweepCandidate,
                        &key,
                        prev,
                        Json::object().set("i", i),
                    );
                    assert_ne!(id, 0);
                    prev = id;
                }
                // Buffers seal on thread exit; no explicit sync here —
                // that is the property under test.
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = replay_dir(&dir);
    assert_eq!(report.dropped_records, 0);
    assert_eq!(report.truncated_segments, 0);
    assert_eq!(
        report.events.len() as u64,
        THREADS * PER_THREAD,
        "a sealed record was lost"
    );
    // Per-thread publish order survives the interleaved seals: for each
    // thread the payload index is strictly increasing in file order, and
    // the intra-thread cause chain is intact.
    for t in 0..THREADS {
        let key = format!("0:1:{t}:4:4:0:0:8:1");
        let of_thread: Vec<_> = report.events.iter().filter(|e| e.key == key).collect();
        assert_eq!(of_thread.len() as u64, PER_THREAD);
        for (i, ev) in of_thread.iter().enumerate() {
            assert_eq!(ev.data.get("i").and_then(Json::as_u64), Some(i as u64));
            let want_cause = if i == 0 { 0 } else { of_thread[i - 1].id };
            assert_eq!(ev.cause, want_cause, "thread {t} chain broken at {i}");
        }
    }
    iatf_journal::set_dir(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segments_rotate_and_replay_whole() {
    if !iatf_journal::is_enabled() {
        return;
    }
    let _guard = LEDGER_LOCK.lock().unwrap();
    let dir = scratch_dir("rotate");
    iatf_journal::set_dir(Some(dir.clone()));
    iatf_journal::reset_memory();

    // Fat payloads push the live segment past its rotation cap quickly.
    let fat = "x".repeat(512);
    const N: u64 = 1024;
    let mut ids = Vec::new();
    for i in 0..N {
        ids.push(publish(
            EventKind::PlanBuild,
            "0:1:9:9:9:0:0:8:1",
            0,
            Json::object().set("i", i).set("pad", fat.as_str()),
        ));
    }
    iatf_journal::sync();

    let report = replay_dir(&dir);
    assert!(report.segments >= 2, "no rotation after {N} fat records");
    assert_eq!(report.dropped_records, 0);
    assert_eq!(report.events.len() as u64, N);
    let replayed: Vec<u64> = report.events.iter().map(|e| e.id).collect();
    assert_eq!(replayed, ids, "order or identity lost across rotation");
    iatf_journal::set_dir(None);
    let _ = std::fs::remove_dir_all(&dir);
}
