//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this crate mirrors the
//! slice of the criterion API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a deliberately simple
//! warmup-then-time loop printing one line per benchmark; there is no
//! statistical analysis, no HTML report, and no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(250),
            throughput: None,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let group = self.benchmark_group(name.to_string());
        let mut b = Bencher::new(group.sample_size, group.warm_up_time, group.measurement_time);
        f(&mut b);
        b.report(name, None);
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Work per iteration, used to report rates.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup between runs (ignored here; every
/// iteration gets a fresh setup).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Inputs cheap enough to batch many per allocation.
    SmallInput,
    /// Inputs large enough to process one at a time.
    LargeInput,
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup budget before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean seconds per iteration from the last `iter*` call.
    secs_per_iter: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Self {
            sample_size,
            warm_up_time,
            measurement_time,
            secs_per_iter: None,
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget is spent, counting calls to
        // pick an iteration count for the measured phase.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_warm = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters = ((budget / per_warm.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut total = 0.0f64;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            total += t0.elapsed().as_secs_f64();
            total_iters += iters;
        }
        self.secs_per_iter = Some(total / total_iters.max(1) as f64);
    }

    /// Times `routine` with a fresh `setup()` value per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0.0f64;
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.warm_up_time + self.measurement_time;
        for sample in 0..self.sample_size.max(1) {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed().as_secs_f64();
            total_iters += 1;
            if sample > 0 && Instant::now() > deadline {
                break;
            }
        }
        self.secs_per_iter = Some(total / total_iters.max(1) as f64);
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        let Some(per) = self.secs_per_iter else {
            println!("{label:<48} (no measurement)");
            return;
        };
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per.max(1e-12);
                println!("{label:<48} {:>12.3e} s/iter  {rate:>12.4e} elem/s", per);
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / per.max(1e-12);
                println!("{label:<48} {:>12.3e} s/iter  {rate:>12.4e} B/s", per);
            }
            None => println!("{label:<48} {:>12.3e} s/iter", per),
        }
    }
}

/// Collects benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
