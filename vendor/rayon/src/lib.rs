//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this crate provides the
//! parallel-iterator surface the workspace's `parallel` feature uses —
//! `par_chunks_mut` + `enumerate` + `for_each_init` — executed
//! **sequentially** on the calling thread. Results are therefore always
//! bit-identical to the sequential path; only the speedup is absent.

/// `rayon::prelude` — the traits the workspace imports.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Mutable slice extension mirroring rayon's `par_chunks_mut`.
pub trait ParallelSliceMut<T> {
    /// Non-overlapping mutable chunks of `size` (last may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

/// Pseudo-parallel mutable chunk iterator.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut(self)
    }

    /// Applies `op` to every chunk (sequentially here).
    pub fn for_each<F: FnMut(&mut [T])>(self, mut op: F) {
        for chunk in self.slice.chunks_mut(self.size) {
            op(chunk);
        }
    }
}

/// Enumerated pseudo-parallel chunk iterator.
pub struct EnumerateChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T> EnumerateChunksMut<'_, T> {
    /// rayon's `for_each_init`: `init()` would run once per worker thread;
    /// sequentially that is exactly once, shared across all chunks.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, mut op: F)
    where
        INIT: Fn() -> S,
        F: FnMut(&mut S, (usize, &mut [T])),
    {
        let mut state = init();
        for (idx, chunk) in self.0.slice.chunks_mut(self.0.size).enumerate() {
            op(&mut state, (idx, chunk));
        }
    }

    /// Applies `op` to every `(index, chunk)` pair (sequentially here).
    pub fn for_each<F: FnMut((usize, &mut [T]))>(self, mut op: F) {
        for pair in self.0.slice.chunks_mut(self.0.size).enumerate() {
            op(pair);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_in_order() {
        let mut v: Vec<usize> = vec![0; 10];
        v.par_chunks_mut(4).enumerate().for_each_init(
            || 100usize,
            |state, (idx, chunk)| {
                for x in chunk.iter_mut() {
                    *x = *state + idx;
                }
                *state += 1000;
            },
        );
        assert_eq!(v, [100, 100, 100, 100, 1101, 1101, 1101, 1101, 2102, 2102]);
    }
}
