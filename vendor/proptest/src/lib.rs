//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment for this workspace has no registry access, so this
//! crate reimplements the *subset* of proptest the workspace's test suites
//! actually use, with the same surface syntax:
//!
//! * strategies: integer/float ranges, [`strategy::Just`], tuples,
//!   [`Strategy::prop_map`], [`prop_oneof!`], [`any`], and
//!   `prop::array::uniform4`;
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `prop_assert!` / `prop_assert_eq!` failure reporting.
//!
//! Cases are generated from a deterministic per-case RNG (SplitMix64 →
//! xorshift*), so failures are reproducible run to run. Unlike real
//! proptest there is **no shrinking**: a failing case reports its inputs'
//! case index and message only.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};

/// `proptest::prelude::*` — everything the test files import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` namespace (`prop::array::uniform4` et al.).
pub mod prop {
    /// Fixed-size array strategies.
    pub mod array {
        use crate::strategy::{Strategy, UniformArray};

        /// Strategy producing `[T; 4]` from four independent draws of `s`.
        pub fn uniform4<S: Strategy>(s: S) -> UniformArray<S, 4> {
            UniformArray::new(s)
        }
    }
}

/// Declares property tests. Supports the subset syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, s in any::<u32>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::Strategy::boxed($s) ),+ ])
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), left, right),
            ));
        }
    }};
}
