//! Deterministic case RNG, configuration, and failure type.

use std::fmt;

/// Per-suite configuration; only `cases` is honored.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// xorshift64* generator seeded per case through SplitMix64, so every case
/// index maps to a fixed, independent stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The deterministic RNG for one case index.
    pub fn for_case(case: u32) -> Self {
        // SplitMix64 scrambles the (small) case index into a full state.
        let mut z = (case as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = TestRng::for_case(4);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = TestRng::for_case(0);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
