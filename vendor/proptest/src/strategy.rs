//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of one type from the case RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among same-valued strategies.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds from the boxed alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs alternatives");
        Self(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// `[T; N]` from independent draws of one element strategy.
pub struct UniformArray<S, const N: usize>(S);

impl<S, const N: usize> UniformArray<S, N> {
    /// Wraps the element strategy.
    pub fn new(s: S) -> Self {
        Self(s)
    }
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

/// Full-range values of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Strategy over every value of an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64 + 1;
                if width == 0 {
                    // the full u64 domain wrapped to zero
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % width) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64 + 1;
                (lo + (rng.next_u64() % width) as i64) as $t
            }
        }
    )*};
}

impl_signed_ranges!(i8, i16, i32, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.next_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..2000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let v = (1usize..=34).generate(&mut rng);
            assert!((1..=34).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let f = (-1e5f32..1e5).generate(&mut rng);
            assert!(f > -1e5 && f < 1e5);
        }
    }

    #[test]
    fn ranges_reach_both_halves() {
        let mut rng = TestRng::for_case(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            let v = (0usize..=9).generate(&mut rng);
            lo |= v < 5;
            hi |= v >= 5;
        }
        assert!(lo && hi);
    }

    #[test]
    fn oneof_map_tuple_array_compose() {
        let mut rng = TestRng::for_case(2);
        let s = crate::prop_oneof![Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && !seen[0]);

        let t = (1usize..=3, Just("x")).prop_map(|(n, s)| s.repeat(n));
        let v = t.generate(&mut rng);
        assert!(["x", "xx", "xxx"].contains(&v.as_str()));

        let arr = UniformArray::<_, 4>::new(0.0f32..1.0);
        let xs = arr.generate(&mut rng);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
