//! Offline stand-in for the `loom` permutation-testing crate.
//!
//! [`model`] runs a closure repeatedly, exploring the interleavings of the
//! threads it spawns with a deterministic cooperative scheduler: every
//! atomic operation (and explicit [`thread::yield_now`]) is a *switch
//! point* where the scheduler picks which thread runs next, and the
//! exploration is an exhaustive depth-first search over those scheduling
//! choices with *preemption bounding* (CHESS-style: at most
//! `LOOM_MAX_PREEMPTIONS` involuntary context switches per schedule,
//! default 2) and a schedule cap (`LOOM_MAX_ITERS`, default 20 000).
//! Threads are real OS threads, but at most one is ever runnable at a
//! time, so each explored schedule is a sequentially-consistent
//! interleaving chosen by the search.
//!
//! ## What this finds, and what it cannot
//!
//! Like the real loom, an assertion failure in any explored schedule
//! panics with the failing schedule attached. *Unlike* the real loom,
//! memory orderings are not simulated — `Relaxed` and `SeqCst` behave
//! identically here — so this stand-in finds **interleaving** bugs (lost
//! updates, torn seqlock reads, stale-epoch serves, merge mismatches) but
//! not **reordering-only** bugs that require a weak-memory executor.
//!
//! ## API subset
//!
//! `loom::model`, `loom::thread::{spawn, yield_now, JoinHandle}`,
//! `loom::sync::{Arc, Mutex}`, and
//! `loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize,
//! Ordering, fence}`. Two deliberate deviations from the real crate:
//! atomic constructors are `const fn` (so `static` initializers work
//! unchanged through the workspace `sync` shims), and `Mutex` is a
//! passthrough over `std::sync::Mutex` with a switch point before each
//! acquisition — model bodies must not hold a guard across a switch point
//! while another model thread contends the same lock.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex};

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Choice {
    /// Thread ids that were runnable at this switch point.
    options: Vec<usize>,
    /// Which of `options` this schedule takes.
    index: usize,
}

#[derive(Default)]
struct ThreadState {
    finished: bool,
    /// `Some(tid)` while blocked joining thread `tid`.
    blocked_on: Option<usize>,
}

struct State {
    threads: Vec<ThreadState>,
    /// Currently running thread (usize::MAX once the iteration is over).
    active: usize,
    /// Replay prefix plus the extension recorded by this iteration.
    choices: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    finished_count: usize,
    abort: Option<String>,
}

struct Scheduler {
    state: StdMutex<State>,
    cv: Condvar,
    max_preemptions: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(StdArc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Secondary panic used to unwind threads of an already-aborted model.
const ABORTED: &str = "loom model aborted";

impl Scheduler {
    fn new(choices: Vec<Choice>, max_preemptions: usize) -> Self {
        Scheduler {
            state: StdMutex::new(State {
                threads: vec![ThreadState::default()],
                active: 0,
                choices,
                pos: 0,
                preemptions: 0,
                finished_count: 0,
                abort: None,
            }),
            cv: Condvar::new(),
            max_preemptions,
        }
    }

    fn runnable(st: &State) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished && t.blocked_on.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Replays or extends the choice path; returns the chosen thread.
    fn choose(&self, st: &mut State, options: Vec<usize>) -> usize {
        if st.pos < st.choices.len() {
            let c = &st.choices[st.pos];
            assert_eq!(
                c.options, options,
                "nondeterministic model: runnable sets diverged during replay"
            );
            st.pos += 1;
            c.options[c.index]
        } else {
            let chosen = options[0];
            st.choices.push(Choice { options, index: 0 });
            st.pos += 1;
            chosen
        }
    }

    /// One switch point: `me` offers the scheduler a chance to run any
    /// other runnable thread. `finishing` marks `me` as done first.
    fn reschedule(&self, me: usize, finishing: bool) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.abort.is_some() {
            drop(st);
            panic!("{ABORTED}");
        }
        if finishing {
            st.threads[me].finished = true;
            st.finished_count += 1;
            for t in st.threads.iter_mut() {
                if t.blocked_on == Some(me) {
                    t.blocked_on = None;
                }
            }
        }
        let runnable = Self::runnable(&st);
        if runnable.is_empty() {
            if st.finished_count == st.threads.len() {
                st.active = usize::MAX;
                self.cv.notify_all();
                return;
            }
            st.abort = Some("deadlock: every live thread is blocked".into());
            st.active = usize::MAX;
            self.cv.notify_all();
            drop(st);
            panic!("{ABORTED}");
        }
        let can_stay = !finishing && runnable.contains(&me);
        let options = if can_stay && st.preemptions >= self.max_preemptions {
            vec![me]
        } else {
            runnable
        };
        let next = self.choose(&mut st, options);
        if can_stay && next != me {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
        if finishing || next == me {
            return;
        }
        while st.active != me && st.abort.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort.is_some() {
            drop(st);
            panic!("{ABORTED}");
        }
    }

    /// Blocks `me` until `child` finishes, scheduling others meanwhile.
    fn block_on_join(&self, me: usize, child: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.abort.is_some() {
                drop(st);
                panic!("{ABORTED}");
            }
            if st.threads[child].finished {
                return;
            }
            st.threads[me].blocked_on = Some(child);
            let runnable = Self::runnable(&st);
            if runnable.is_empty() {
                st.abort = Some("deadlock: join cycle with no runnable thread".into());
                st.active = usize::MAX;
                self.cv.notify_all();
                drop(st);
                panic!("{ABORTED}");
            }
            let next = self.choose(&mut st, runnable);
            st.active = next;
            self.cv.notify_all();
            while !(st.active == me && st.threads[me].blocked_on.is_none())
                && st.abort.is_none()
            {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// First wait of a freshly spawned thread: parked until scheduled.
    fn wait_first(&self, me: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.active != me && st.abort.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort.is_some() {
            drop(st);
            panic!("{ABORTED}");
        }
    }

    /// Records the first real failure and wakes everything up.
    fn abort_with(&self, me: usize, msg: String) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !st.threads[me].finished {
            st.threads[me].finished = true;
            st.finished_count += 1;
        }
        if st.abort.is_none() && msg != ABORTED {
            st.abort = Some(msg);
        } else if st.abort.is_none() {
            st.abort = Some(ABORTED.into());
        }
        st.active = usize::MAX;
        self.cv.notify_all();
    }

    fn finish(&self, me: usize) {
        self.reschedule(me, true);
    }
}

pub(crate) fn switch_point() {
    if let Some((sched, me)) = current() {
        sched.reschedule(me, false);
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".into()
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Advances the DFS path to the next unexplored schedule, or `None` when
/// the (preemption-bounded) space is exhausted.
fn advance(mut choices: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = choices.last_mut() {
        if last.index + 1 < last.options.len() {
            last.index += 1;
            return Some(choices);
        }
        choices.pop();
    }
    None
}

/// Explores the scheduling space of `f`, panicking with the failing
/// schedule if any explored interleaving panics (e.g. a failed assert).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let max_iters = env_usize("LOOM_MAX_ITERS", 20_000);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let mut path = Some(Vec::new());
    let mut iters = 0usize;
    while let Some(choices) = path.take() {
        iters += 1;
        if iters > max_iters {
            eprintln!(
                "loom: exploration capped at {max_iters} schedules \
                 (LOOM_MAX_ITERS); model passed every explored schedule"
            );
            return;
        }
        let sched = StdArc::new(Scheduler::new(choices, max_preemptions));
        let body = StdArc::clone(&f);
        let s = StdArc::clone(&sched);
        let main = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&s), 0)));
            match catch_unwind(AssertUnwindSafe(|| body())) {
                Ok(()) => s.finish(0),
                Err(e) => s.abort_with(0, panic_message(e)),
            }
            CURRENT.with(|c| *c.borrow_mut() = None);
        });
        {
            let mut st = sched.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.abort.is_none() && st.finished_count < st.threads.len() {
                st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let _ = main.join();
        let st = sched.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = &st.abort {
            let schedule: Vec<usize> = st.choices[..].iter().map(|c| c.options[c.index]).collect();
            panic!("loom model failed after {iters} schedules: {msg}\nschedule: {schedule:?}");
        }
        path = advance(st.choices.clone());
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model-scheduled threads (real OS threads under cooperative control).
pub mod thread {
    use super::{current, panic_message, CURRENT};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    /// Handle to a model thread; `join` schedules other threads while the
    /// child runs.
    pub struct JoinHandle<T> {
        id: usize,
        result: StdArc<StdMutex<Option<T>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the child to finish and returns its result.
        ///
        /// # Errors
        /// Never returns `Err` in this stand-in: a child panic aborts the
        /// whole model instead (matching how the models use `.unwrap()`).
        pub fn join(mut self) -> std::thread::Result<T> {
            let (sched, me) = current().expect("loom join outside a model");
            sched.block_on_join(me, self.id);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            let v = self
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("finished model thread left no result");
            Ok(v)
        }
    }

    /// Spawns a model thread; it becomes schedulable at the next switch
    /// point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, _) = current().expect("loom spawn outside a model");
        let id = {
            let mut st = sched.state.lock().unwrap_or_else(|e| e.into_inner());
            st.threads.push(super::ThreadState::default());
            st.threads.len() - 1
        };
        let result = StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let s = StdArc::clone(&sched);
        let os = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&s), id)));
            s.wait_first(id);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    s.finish(id);
                }
                Err(e) => s.abort_with(id, panic_message(e)),
            }
            CURRENT.with(|c| *c.borrow_mut() = None);
        });
        JoinHandle {
            id,
            result,
            os: Some(os),
        }
    }

    /// An explicit switch point.
    pub fn yield_now() {
        super::switch_point();
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Model-aware synchronization primitives.
pub mod sync {
    pub use std::sync::Arc;

    /// Passthrough mutex with a switch point before each acquisition.
    /// Model bodies must not hold a guard across a switch point while
    /// another model thread contends the same lock (the real loom blocks
    /// cooperatively; this stand-in would block the OS thread).
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard type matching `std`'s.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub const fn new(t: T) -> Self {
            Mutex(std::sync::Mutex::new(t))
        }

        /// Locks (switch point first).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            super::switch_point();
            self.0.lock()
        }

        /// Attempts the lock (switch point first).
        pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
            super::switch_point();
            self.0.try_lock()
        }
    }

    /// Atomics whose every operation is a scheduler switch point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// A fence is only a switch point here (orderings are not
        /// simulated).
        pub fn fence(_order: Ordering) {
            crate::switch_point();
        }

        macro_rules! model_atomic {
            ($name:ident, $std:ident, $ty:ty) => {
                /// Model-checked atomic: every access is a switch point.
                /// Values are held in the matching `std` atomic, so these
                /// also work (without scheduling) outside a model.
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Creates the atomic (`const`, unlike the real loom,
                    /// so `static` initializers keep working).
                    pub const fn new(v: $ty) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }

                    /// Atomic load (switch point).
                    pub fn load(&self, o: Ordering) -> $ty {
                        crate::switch_point();
                        self.0.load(o)
                    }

                    /// Atomic store (switch point).
                    pub fn store(&self, v: $ty, o: Ordering) {
                        crate::switch_point();
                        self.0.store(v, o);
                    }

                    /// Atomic swap (switch point).
                    pub fn swap(&self, v: $ty, o: Ordering) -> $ty {
                        crate::switch_point();
                        self.0.swap(v, o)
                    }

                    /// Atomic add, returning the previous value (switch
                    /// point).
                    pub fn fetch_add(&self, v: $ty, o: Ordering) -> $ty {
                        crate::switch_point();
                        self.0.fetch_add(v, o)
                    }

                    /// Atomic subtract, returning the previous value
                    /// (switch point).
                    pub fn fetch_sub(&self, v: $ty, o: Ordering) -> $ty {
                        crate::switch_point();
                        self.0.fetch_sub(v, o)
                    }

                    /// Atomic minimum, returning the previous value
                    /// (switch point).
                    pub fn fetch_min(&self, v: $ty, o: Ordering) -> $ty {
                        crate::switch_point();
                        self.0.fetch_min(v, o)
                    }

                    /// Atomic maximum, returning the previous value
                    /// (switch point).
                    pub fn fetch_max(&self, v: $ty, o: Ordering) -> $ty {
                        crate::switch_point();
                        self.0.fetch_max(v, o)
                    }

                    /// Atomic compare-exchange (switch point).
                    pub fn compare_exchange(
                        &self,
                        cur: $ty,
                        new: $ty,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$ty, $ty> {
                        crate::switch_point();
                        self.0.compare_exchange(cur, new, ok, err)
                    }
                }
            };
        }

        model_atomic!(AtomicU32, AtomicU32, u32);
        model_atomic!(AtomicU64, AtomicU64, u64);
        model_atomic!(AtomicUsize, AtomicUsize, usize);

        /// Model-checked boolean atomic: every access is a switch point.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates the atomic (`const`, unlike the real loom).
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (switch point).
            pub fn load(&self, o: Ordering) -> bool {
                crate::switch_point();
                self.0.load(o)
            }

            /// Atomic store (switch point).
            pub fn store(&self, v: bool, o: Ordering) {
                crate::switch_point();
                self.0.store(v, o);
            }

            /// Atomic swap (switch point).
            pub fn swap(&self, v: bool, o: Ordering) -> bool {
                crate::switch_point();
                self.0.swap(v, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use super::sync::Arc;

    /// Counter increments from two threads: every interleaving of two
    /// fetch_adds sums to 2 (sanity: the scheduler runs models at all).
    #[test]
    fn fetch_add_never_loses_updates() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                n2.fetch_add(1, Relaxed);
            });
            n.fetch_add(1, Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Relaxed), 2);
        });
    }

    /// The classic lost-update race MUST be found: two read-modify-write
    /// sequences built from separate load/store can collide.
    #[test]
    fn load_store_race_is_detected() {
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicU64::new(0));
                let n2 = Arc::clone(&n);
                let t = super::thread::spawn(move || {
                    let v = n2.load(Relaxed);
                    n2.store(v + 1, Relaxed);
                });
                let v = n.load(Relaxed);
                n.store(v + 1, Relaxed);
                t.join().unwrap();
                assert_eq!(n.load(Relaxed), 2, "lost update");
            });
        });
        assert!(
            found.is_err(),
            "DFS failed to find the load/store lost-update interleaving"
        );
    }

    /// Exploration is exhaustive for a tiny model: both final orders of
    /// two stores are seen across schedules.
    #[test]
    fn explores_both_store_orders() {
        use std::sync::Mutex;
        let seen: &'static Mutex<Vec<u64>> = Box::leak(Box::new(Mutex::new(Vec::new())));
        super::model(move || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                n2.store(1, Relaxed);
            });
            n.store(2, Relaxed);
            t.join().unwrap();
            seen.lock().unwrap().push(n.load(Relaxed));
        });
        let seen = seen.lock().unwrap();
        assert!(seen.contains(&1), "store order 2-then-1 never explored");
        assert!(seen.contains(&2), "store order 1-then-2 never explored");
    }
}
